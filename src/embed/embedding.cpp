#include "embed/embedding.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "util/artifact.hpp"
#include "util/bithex.hpp"
#include "util/csr.hpp"
#include "util/csv.hpp"

namespace dnsembed::embed {

EmbeddingMatrix::EmbeddingMatrix(std::vector<std::string> names, std::size_t dimension)
    : names_{std::move(names)}, dimension_{dimension}, data_(names_.size() * dimension, 0.0f) {
  if (dimension == 0) throw std::invalid_argument{"EmbeddingMatrix: zero dimension"};
  rebuild_index();
}

std::span<float> EmbeddingMatrix::row(std::size_t i) {
  if (i >= size()) throw std::out_of_range{"EmbeddingMatrix::row"};
  return {data_.data() + i * dimension_, dimension_};
}

std::span<const float> EmbeddingMatrix::row(std::size_t i) const {
  if (i >= size()) throw std::out_of_range{"EmbeddingMatrix::row"};
  return {data_.data() + i * dimension_, dimension_};
}

std::optional<std::size_t> EmbeddingMatrix::index_of(std::string_view name) const {
  const auto it = std::lower_bound(
      index_.begin(), index_.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it == index_.end() || it->first != name) return std::nullopt;
  return it->second;
}

std::optional<std::span<const float>> EmbeddingMatrix::vector_for(std::string_view name) const {
  const auto idx = index_of(name);
  if (!idx) return std::nullopt;
  return row(*idx);
}

void EmbeddingMatrix::l2_normalize() {
  for (std::size_t i = 0; i < size(); ++i) {
    auto r = row(i);
    double norm2 = 0.0;
    for (const float x : r) norm2 += static_cast<double>(x) * x;
    if (norm2 <= 0.0) continue;
    const auto inv = static_cast<float>(1.0 / std::sqrt(norm2));
    for (float& x : r) x *= inv;
  }
}

double EmbeddingMatrix::cosine(std::size_t i, std::size_t j) const {
  const auto a = row(i);
  const auto b = row(j);
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t k = 0; k < dimension_; ++k) {
    dot += static_cast<double>(a[k]) * b[k];
    na += static_cast<double>(a[k]) * a[k];
    nb += static_cast<double>(b[k]) * b[k];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

EmbeddingMatrix EmbeddingMatrix::concat(const std::vector<std::string>& names,
                                        const std::vector<const EmbeddingMatrix*>& parts) {
  if (parts.empty()) throw std::invalid_argument{"EmbeddingMatrix::concat: no parts"};
  std::size_t total_dim = 0;
  for (const auto* p : parts) {
    if (p == nullptr) throw std::invalid_argument{"EmbeddingMatrix::concat: null part"};
    total_dim += p->dimension();
  }
  EmbeddingMatrix out{names, total_dim};
  for (std::size_t i = 0; i < names.size(); ++i) {
    auto dst = out.row(i);
    std::size_t offset = 0;
    for (const auto* p : parts) {
      if (const auto src = p->vector_for(names[i])) {
        std::copy(src->begin(), src->end(), dst.begin() + static_cast<long>(offset));
      }
      offset += p->dimension();
    }
  }
  return out;
}

void EmbeddingMatrix::save_csv(const std::string& path) const {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"EmbeddingMatrix::save_csv: cannot open " + path};
  for (std::size_t i = 0; i < size(); ++i) {
    out << names_[i];
    for (const float x : row(i)) out << ',' << x;
    out << '\n';
  }
}

EmbeddingMatrix EmbeddingMatrix::load_csv(const std::string& path) {
  const auto rows = util::read_csv_file(path);
  if (rows.empty()) throw std::runtime_error{"EmbeddingMatrix::load_csv: empty file " + path};
  const std::size_t dim = rows.front().size() - 1;
  if (dim == 0) throw std::runtime_error{"EmbeddingMatrix::load_csv: no columns"};
  std::vector<std::string> names;
  names.reserve(rows.size());
  for (const auto& r : rows) names.push_back(r.front());
  EmbeddingMatrix out{std::move(names), dim};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != dim + 1) {
      throw std::runtime_error{"EmbeddingMatrix::load_csv: ragged row " + std::to_string(i)};
    }
    auto dst = out.row(i);
    for (std::size_t k = 0; k < dim; ++k) {
      const auto& field = rows[i][k + 1];
      float value = 0.0f;
      const auto [ptr, ec] =
          std::from_chars(field.data(), field.data() + field.size(), value);
      if (ec != std::errc{} || ptr != field.data() + field.size()) {
        throw std::runtime_error{"EmbeddingMatrix::load_csv: bad number '" + field + "'"};
      }
      dst[k] = value;
    }
  }
  return out;
}

namespace {

constexpr std::string_view kEmbeddingKind = "embedding";

[[noreturn]] void bad_embedding(const std::string& context, std::string reason) {
  util::fsio::note_corrupt_detected();
  throw util::CorruptArtifact{context, std::move(reason)};
}

bool parse_size_field(std::string_view text, std::size_t& out) {
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

}  // namespace

std::string EmbeddingMatrix::payload() const {
  std::string out;
  out += "rows " + std::to_string(size()) + " dim " + std::to_string(dimension_) + "\n";
  for (std::size_t i = 0; i < size(); ++i) {
    out += names_[i];
    out += '\t';
    for (const float x : row(i)) out += util::float_to_hex(x);
    out += '\n';
  }
  return out;
}

EmbeddingMatrix EmbeddingMatrix::parse_payload(std::string_view payload,
                                               const std::string& context) {
  std::size_t pos = 0;
  const auto take_line = [&](std::string_view& line) {
    if (pos >= payload.size()) return false;
    const auto nl = payload.find('\n', pos);
    if (nl == std::string_view::npos) {
      line = payload.substr(pos);
      pos = payload.size();
    } else {
      line = payload.substr(pos, nl - pos);
      pos = nl + 1;
    }
    return true;
  };

  std::string_view header;
  if (!take_line(header) || header.substr(0, 5) != "rows ") {
    bad_embedding(context, "embedding payload: missing header");
  }
  const auto dim_at = header.find(" dim ");
  std::size_t rows = 0;
  std::size_t dim = 0;
  if (dim_at == std::string_view::npos || !parse_size_field(header.substr(5, dim_at - 5), rows) ||
      !parse_size_field(header.substr(dim_at + 5), dim) || dim == 0) {
    bad_embedding(context, "embedding payload: bad header");
  }

  std::vector<std::string> names;
  std::vector<float> values;
  names.reserve(rows);
  values.reserve(rows * dim);
  for (std::size_t i = 0; i < rows; ++i) {
    std::string_view line;
    if (!take_line(line)) bad_embedding(context, "embedding payload: truncated rows");
    const auto tab = line.find('\t');
    if (tab == std::string_view::npos || tab == 0 ||
        line.size() - tab - 1 != dim * 8) {
      bad_embedding(context, "embedding payload: bad row " + std::to_string(i));
    }
    names.emplace_back(line.substr(0, tab));
    for (std::size_t k = 0; k < dim; ++k) {
      float value = 0.0f;
      if (!util::hex_to_float(line.substr(tab + 1 + k * 8, 8), value)) {
        bad_embedding(context, "embedding payload: bad value in row " + std::to_string(i));
      }
      values.push_back(value);
    }
  }
  if (pos != payload.size()) {
    bad_embedding(context, "embedding payload: trailing bytes");
  }

  EmbeddingMatrix out;
  try {
    out = EmbeddingMatrix{std::move(names), dim};
  } catch (const std::invalid_argument& e) {
    bad_embedding(context, e.what());  // e.g. duplicate names
  }
  std::copy(values.begin(), values.end(), out.data_.begin());
  return out;
}

void EmbeddingMatrix::save_file(const std::string& path) const {
  util::save_artifact(path, kEmbeddingKind, payload());
}

EmbeddingMatrix EmbeddingMatrix::load_file(const std::string& path) {
  return parse_payload(util::load_artifact(path, kEmbeddingKind), path);
}

void EmbeddingMatrix::save_arena_file(const std::string& path) const {
  util::DenseMatrix::build(names_, dimension_, data_).save_file(path);
}

EmbeddingMatrix EmbeddingMatrix::load_arena_file(const std::string& path) {
  const util::DenseMatrix m = util::DenseMatrix::load_file(path);
  if (m.cols() == 0) bad_embedding(path, "embedding arena: zero dimension");
  EmbeddingMatrix out;
  try {
    out = EmbeddingMatrix{m.names_copy(), m.cols()};
  } catch (const std::invalid_argument& e) {
    bad_embedding(path, e.what());
  }
  std::copy(m.data().begin(), m.data().end(), out.data_.begin());
  return out;
}

void EmbeddingMatrix::rebuild_index() {
  index_.clear();
  index_.reserve(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) index_.emplace_back(names_[i], i);
  std::sort(index_.begin(), index_.end());
  for (std::size_t i = 1; i < index_.size(); ++i) {
    if (index_[i].first == index_[i - 1].first) {
      throw std::invalid_argument{"EmbeddingMatrix: duplicate name " + index_[i].first};
    }
  }
}

}  // namespace dnsembed::embed
