#include "embed/alias.hpp"

#include <stdexcept>

namespace dnsembed::embed {

AliasTable::AliasTable(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument{"AliasTable: empty weights"};
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument{"AliasTable: negative weight"};
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument{"AliasTable: weights sum to zero"};

  const std::size_t n = weights.size();
  pmf_.resize(n);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities; buckets with mass < 1 are "small", >= 1 "large".
  std::vector<double> scaled(n);
  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    pmf_[i] = weights[i] / total;
    scaled[i] = pmf_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers (numerical residue) get probability 1.
  for (const std::size_t i : small) prob_[i] = 1.0;
  for (const std::size_t i : large) prob_[i] = 1.0;
}

std::size_t AliasTable::sample(util::Rng& rng) const noexcept {
  const std::size_t bucket = rng.uniform_index(prob_.size());
  return rng.uniform() < prob_[bucket] ? bucket : alias_[bucket];
}

double AliasTable::probability(std::size_t i) const noexcept {
  return i < pmf_.size() ? pmf_[i] : 0.0;
}

}  // namespace dnsembed::embed
