// LINE: Large-scale Information Network Embedding (Tang et al., WWW'15),
// the embedder the paper applies to the three domain-similarity graphs
// (paper §5, Eq. 4-6).
//
// Implementation follows the reference design:
//  - first-order proximity: maximize sigma(u_i . u_j) over observed edges;
//  - second-order proximity: maximize sigma(u_i . c_j) with per-vertex
//    context vectors c;
//  - edges are drawn with probability proportional to their weight via an
//    alias table (edge sampling), so weighted graphs need no gradient
//    rescaling;
//  - negative vertices are drawn from deg^0.75 (negative sampling);
//  - SGD with linearly decaying learning rate;
//  - kBoth trains the two objectives independently and concatenates the
//    halves, as the LINE paper recommends.
#pragma once

#include <cstdint>

#include "embed/embedding.hpp"
#include "graph/weighted_graph.hpp"
#include "util/csr.hpp"

namespace dnsembed::embed {

enum class LineOrder { kFirst, kSecond, kBoth };

struct LineConfig {
  /// Total output dimension. kBoth splits it between the two objectives.
  std::size_t dimension = 128;
  LineOrder order = LineOrder::kBoth;

  /// SGD steps per objective = samples_per_edge * edge_count, unless
  /// total_samples overrides it (non-zero).
  std::size_t samples_per_edge = 300;
  std::size_t total_samples = 0;

  /// Negative samples per positive edge.
  std::size_t negatives = 5;

  double initial_lr = 0.025;
  /// LR decays linearly to initial_lr * min_lr_fraction.
  double min_lr_fraction = 1e-4;

  /// Exponent of the negative-sampling noise distribution over weighted
  /// vertex degrees (0.75 from word2vec/LINE).
  double noise_power = 0.75;

  /// Logical SGD lanes (deterministic batch-synchronous parallelism). The
  /// trained embedding is bit-identical for every value: samples draw from
  /// counter-based per-step seeds and batched updates are applied at
  /// barriers in global step order per destination row, so this knob only
  /// changes throughput. OS workers are capped at the hardware thread count.
  std::size_t threads = 1;

  std::uint64_t seed = 1;

  /// L2-normalize rows after training (LINE normalizes embeddings before
  /// feeding classifiers).
  bool normalize_output = true;
};

/// Train LINE on a weighted undirected graph. Isolated vertices receive a
/// zero vector (nothing can be learned for them). Throws
/// std::invalid_argument for a config with zero dimension/negatives
/// mismatch or a graph with vertices but dimension too small to split.
/// Internally converts to the CSR form below, so both entry points share
/// one training core and produce identical output for the same graph.
EmbeddingMatrix train_line(const graph::WeightedGraph& g, const LineConfig& config);

/// Train LINE directly on a CSR arena graph — the zero-copy pipeline path:
/// the edge sampler indexes the contiguous edge struct-of-arrays straight
/// out of the mapped artifact, and the noise distribution reads the
/// precomputed weighted-degree section, so no per-vertex allocations or
/// re-parse happen between artifact load and the first SGD step.
EmbeddingMatrix train_line(const util::CsrGraph& g, const LineConfig& config);

}  // namespace dnsembed::embed
