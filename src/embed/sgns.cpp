#include "embed/sgns.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "embed/alias.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace dnsembed::embed {

namespace {

double fast_sigmoid(double x) noexcept {
  if (x >= 6.0) return 1.0;
  if (x <= -6.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

EmbeddingMatrix train_sgns(const graph::WeightedGraph& g,
                           const std::vector<std::vector<graph::VertexId>>& walks,
                           const SgnsConfig& config) {
  if (config.dimension == 0) throw std::invalid_argument{"train_sgns: zero dimension"};
  if (config.window == 0) throw std::invalid_argument{"train_sgns: zero window"};

  EmbeddingMatrix out{g.names().names(), config.dimension};
  const std::size_t n = g.vertex_count();
  if (n == 0) return out;

  // Corpus frequencies drive the noise distribution.
  std::vector<double> freq(n, 0.0);
  std::size_t corpus_tokens = 0;
  for (const auto& walk : walks) {
    for (const auto v : walk) {
      if (v >= n) throw std::out_of_range{"train_sgns: walk vertex out of range"};
      freq[v] += 1.0;
      ++corpus_tokens;
    }
  }
  if (corpus_tokens == 0) return out;  // empty corpus -> zero embeddings
  std::vector<double> noise(n);
  for (std::size_t v = 0; v < n; ++v) noise[v] = std::pow(freq[v], config.noise_power);
  const AliasTable noise_sampler{noise};

  const std::size_t dim = config.dimension;
  util::Rng rng{config.seed};
  std::vector<float> vertex(n * dim);
  std::vector<float> context(n * dim, 0.0f);
  for (auto& x : vertex) {
    x = static_cast<float>((rng.uniform() - 0.5) / static_cast<double>(dim));
  }

  const std::size_t total_positions = corpus_tokens * config.epochs;
  const double lr_floor = config.initial_lr * config.min_lr_fraction;
  std::size_t position = 0;
  std::vector<float> grad(dim);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (const auto& walk : walks) {
      for (std::size_t center_idx = 0; center_idx < walk.size(); ++center_idx, ++position) {
        const double progress =
            static_cast<double>(position) / static_cast<double>(total_positions);
        const double lr = std::max(lr_floor, config.initial_lr * (1.0 - progress));
        const graph::VertexId center = walk[center_idx];
        const std::size_t window = 1 + rng.uniform_index(config.window);
        const std::size_t lo = center_idx >= window ? center_idx - window : 0;
        const std::size_t hi = std::min(walk.size(), center_idx + window + 1);
        float* const center_vec = vertex.data() + static_cast<std::size_t>(center) * dim;
        for (std::size_t ctx_idx = lo; ctx_idx < hi; ++ctx_idx) {
          if (ctx_idx == center_idx) continue;
          std::fill(grad.begin(), grad.end(), 0.0f);
          for (std::size_t k = 0; k <= config.negatives; ++k) {
            graph::VertexId target = 0;
            double label = 0.0;
            if (k == 0) {
              target = walk[ctx_idx];
              label = 1.0;
            } else {
              target = static_cast<graph::VertexId>(noise_sampler.sample(rng));
              if (target == walk[ctx_idx]) continue;
            }
            float* const tgt = context.data() + static_cast<std::size_t>(target) * dim;
            const double dot = util::simd::dot(center_vec, tgt, dim);
            const auto coeff = static_cast<float>((label - fast_sigmoid(dot)) * lr);
            util::simd::fused_sigmoid_step(coeff, center_vec, tgt, grad.data(), dim);
          }
          util::simd::axpy(1.0f, grad.data(), center_vec, dim);
        }
      }
    }
  }

  for (std::size_t v = 0; v < n; ++v) {
    if (freq[v] == 0.0) continue;  // never walked: stay zero
    auto dst = out.row(v);
    for (std::size_t d = 0; d < dim; ++d) dst[d] = vertex[v * dim + d];
  }
  if (config.normalize_output) out.l2_normalize();
  return out;
}

}  // namespace dnsembed::embed
