#include "embed/walks.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace dnsembed::embed {

namespace {

/// Sample a neighbor of v proportionally to edge weight.
graph::VertexId sample_neighbor(const graph::WeightedGraph& g, graph::VertexId v,
                                util::Rng& rng) {
  const auto neighbors = g.neighbors(v);
  double total = 0.0;
  for (const auto& n : neighbors) total += n.weight;
  double u = rng.uniform() * total;
  for (const auto& n : neighbors) {
    u -= n.weight;
    if (u <= 0.0) return n.id;
  }
  return neighbors.back().id;
}

}  // namespace

std::vector<std::vector<graph::VertexId>> generate_walks(const graph::WeightedGraph& g,
                                                         const WalkConfig& config) {
  if (config.walk_length < 1) throw std::invalid_argument{"generate_walks: zero length"};
  if (config.p <= 0.0 || config.q <= 0.0) {
    throw std::invalid_argument{"generate_walks: p and q must be positive"};
  }
  util::Rng rng{config.seed};
  const bool biased = config.p != 1.0 || config.q != 1.0;
  const double inv_p = 1.0 / config.p;
  const double inv_q = 1.0 / config.q;
  const double max_bias = std::max({inv_p, 1.0, inv_q});

  std::vector<std::vector<graph::VertexId>> walks;
  walks.reserve(g.vertex_count() * config.walks_per_vertex);
  for (std::size_t round = 0; round < config.walks_per_vertex; ++round) {
    for (graph::VertexId start = 0; start < g.vertex_count(); ++start) {
      if (g.degree(start) == 0) continue;
      std::vector<graph::VertexId> walk;
      walk.reserve(config.walk_length);
      walk.push_back(start);
      graph::VertexId prev = start;
      while (walk.size() < config.walk_length) {
        const graph::VertexId cur = walk.back();
        graph::VertexId next = 0;
        if (!biased || walk.size() == 1 || g.degree(cur) == 1) {
          // Unbiased start, DeepWalk, or a forced move (degree-1 vertex):
          // the rejection loop below would spin ~1/bias times for the same
          // outcome.
          next = sample_neighbor(g, cur, rng);
        } else {
          // node2vec rejection sampling: propose by weight, accept with
          // probability bias(next) / max_bias.
          while (true) {
            next = sample_neighbor(g, cur, rng);
            double bias = inv_q;
            if (next == prev) {
              bias = inv_p;
            } else if (g.has_edge(next, prev)) {
              bias = 1.0;
            }
            if (rng.uniform() * max_bias < bias) break;
          }
        }
        prev = cur;
        walk.push_back(next);
      }
      walks.push_back(std::move(walk));
    }
  }
  return walks;
}

}  // namespace dnsembed::embed
