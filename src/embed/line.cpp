#include "embed/line.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "embed/alias.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/thread_pool.hpp"

namespace dnsembed::embed {

namespace {

/// Precomputed sigmoid over [-kSigmoidBound, kSigmoidBound].
class SigmoidTable {
 public:
  SigmoidTable() {
    for (std::size_t i = 0; i < kSize; ++i) {
      const double x = (static_cast<double>(i) / (kSize - 1) * 2.0 - 1.0) * kBound;
      table_[i] = 1.0 / (1.0 + std::exp(-x));
    }
  }

  double operator()(double x) const noexcept {
    if (x >= kBound) return 1.0;
    if (x <= -kBound) return 0.0;
    const auto idx =
        static_cast<std::size_t>((x + kBound) / (2.0 * kBound) * (kSize - 1) + 0.5);
    return table_[idx];
  }

 private:
  static constexpr std::size_t kSize = 2048;
  static constexpr double kBound = 6.0;
  double table_[kSize];
};

const SigmoidTable& sigmoid() {
  static const SigmoidTable table;
  return table;
}

struct TrainContext {
  const graph::WeightedGraph& g;
  const LineConfig& config;
  AliasTable edge_sampler;
  AliasTable noise_sampler;
  std::size_t steps = 0;
};

/// One SGD objective pass (first- or second-order) writing `dim`-wide rows
/// into `vertex` (and using `context` when second_order). Hogwild when
/// config.threads > 1.
void run_sgd(TrainContext& ctx, std::vector<float>& vertex, std::vector<float>& context,
             std::size_t dim, bool second_order) {
  const auto& g = ctx.g;
  const auto& config = ctx.config;
  const auto edges = g.edges();
  const std::size_t total = ctx.steps;
  const double lr_floor = config.initial_lr * config.min_lr_fraction;

  // One relaxed add per SGD sample: an LINE step does O(dim * negatives)
  // flops, so the sharded counter disappears into it; disabled runs pay a
  // predicted branch.
  static obs::Counter& samples_counter = obs::metrics().counter("embed.line.samples");

  const auto worker = [&](std::size_t begin, std::size_t end, std::uint64_t seed) {
    OBS_SPAN(second_order ? "embed.line.worker.order2" : "embed.line.worker.order1");
    util::Rng rng{seed};
    std::vector<double> grad(dim);
    for (std::size_t step = begin; step < end; ++step) {
      samples_counter.add(1);
      const double progress = static_cast<double>(step) / static_cast<double>(total);
      const double lr = std::max(lr_floor, config.initial_lr * (1.0 - progress));

      const auto& edge = edges[ctx.edge_sampler.sample(rng)];
      // Random orientation: the graph is undirected, LINE's updates are not.
      const bool flip = rng.bernoulli(0.5);
      const graph::VertexId src = flip ? edge.v : edge.u;
      const graph::VertexId dst = flip ? edge.u : edge.v;

      float* const src_vec = vertex.data() + static_cast<std::size_t>(src) * dim;
      std::fill(grad.begin(), grad.end(), 0.0);

      for (std::size_t k = 0; k <= config.negatives; ++k) {
        graph::VertexId target = 0;
        double label = 0.0;
        if (k == 0) {
          target = dst;
          label = 1.0;
        } else {
          target = static_cast<graph::VertexId>(ctx.noise_sampler.sample(rng));
          if (target == dst || target == src) continue;
        }
        float* const tgt_vec = (second_order ? context.data() : vertex.data()) +
                               static_cast<std::size_t>(target) * dim;
        double dot = 0.0;
        for (std::size_t d = 0; d < dim; ++d) dot += static_cast<double>(src_vec[d]) * tgt_vec[d];
        const double coeff = (label - sigmoid()(dot)) * lr;
        for (std::size_t d = 0; d < dim; ++d) {
          grad[d] += coeff * tgt_vec[d];
          tgt_vec[d] += static_cast<float>(coeff * src_vec[d]);
        }
      }
      for (std::size_t d = 0; d < dim; ++d) src_vec[d] += static_cast<float>(grad[d]);
    }
  };

  if (config.threads <= 1) {
    worker(0, total, config.seed ^ (second_order ? 0xA5A5A5A5ULL : 0x5A5A5A5AULL));
  } else {
    util::ThreadPool pool{config.threads};
    pool.parallel_for(0, total, [&](std::size_t lo, std::size_t hi, std::size_t w) {
      worker(lo, hi, config.seed + w * 0x9e3779b97f4a7c15ULL + (second_order ? 1 : 0));
    });
  }
}

/// Train one objective and return the raw (unnormalized) embedding block.
std::vector<float> train_order(TrainContext& ctx, std::size_t dim, bool second_order) {
  const std::size_t n = ctx.g.vertex_count();
  std::vector<float> vertex(n * dim);
  std::vector<float> context;
  util::Rng rng{ctx.config.seed * 7919 + (second_order ? 1 : 0)};
  for (auto& x : vertex) {
    x = static_cast<float>((rng.uniform() - 0.5) / static_cast<double>(dim));
  }
  if (second_order) context.assign(n * dim, 0.0f);  // word2vec-style zero init
  run_sgd(ctx, vertex, context, dim, second_order);
  return vertex;
}

}  // namespace

EmbeddingMatrix train_line(const graph::WeightedGraph& g, const LineConfig& config) {
  OBS_SPAN("embed.line.train");
  if (config.dimension == 0) throw std::invalid_argument{"train_line: zero dimension"};
  if (config.order == LineOrder::kBoth && config.dimension < 2) {
    throw std::invalid_argument{"train_line: dimension too small to split"};
  }
  if (config.initial_lr <= 0.0) throw std::invalid_argument{"train_line: non-positive lr"};

  EmbeddingMatrix out{g.names().names(), config.dimension};
  if (g.vertex_count() == 0) return out;
  if (g.edge_count() == 0) return out;  // all isolated -> all-zero rows

  // Samplers shared by both objectives.
  std::vector<double> edge_weights;
  edge_weights.reserve(g.edge_count());
  for (const auto& e : g.edges()) edge_weights.push_back(e.weight);
  std::vector<double> noise(g.vertex_count());
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v) {
    noise[v] = std::pow(g.weighted_degree(v), config.noise_power);
  }
  TrainContext ctx{g, config, AliasTable{edge_weights}, AliasTable{noise}, 0};
  ctx.steps = config.total_samples != 0 ? config.total_samples
                                        : config.samples_per_edge * g.edge_count();
  ctx.steps = std::max<std::size_t>(ctx.steps, 1);

  const auto write_block = [&](const std::vector<float>& block, std::size_t dim,
                               std::size_t offset) {
    for (std::size_t v = 0; v < g.vertex_count(); ++v) {
      auto dst = out.row(v);
      if (g.degree(static_cast<graph::VertexId>(v)) == 0) continue;  // keep zeros
      for (std::size_t d = 0; d < dim; ++d) dst[offset + d] = block[v * dim + d];
    }
  };

  if (config.order == LineOrder::kFirst) {
    write_block(train_order(ctx, config.dimension, false), config.dimension, 0);
  } else if (config.order == LineOrder::kSecond) {
    write_block(train_order(ctx, config.dimension, true), config.dimension, 0);
  } else {
    const std::size_t first_dim = config.dimension / 2;
    const std::size_t second_dim = config.dimension - first_dim;
    write_block(train_order(ctx, first_dim, false), first_dim, 0);
    write_block(train_order(ctx, second_dim, true), second_dim, first_dim);
  }
  if (config.normalize_output) out.l2_normalize();
  return out;
}

}  // namespace dnsembed::embed
