#include "embed/line.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "embed/alias.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace dnsembed::embed {

namespace {

/// Precomputed sigmoid over [-kSigmoidBound, kSigmoidBound].
class SigmoidTable {
 public:
  SigmoidTable() {
    for (std::size_t i = 0; i < kSize; ++i) {
      const double x = (static_cast<double>(i) / (kSize - 1) * 2.0 - 1.0) * kBound;
      table_[i] = 1.0 / (1.0 + std::exp(-x));
    }
  }

  double operator()(double x) const noexcept {
    if (x >= kBound) return 1.0;
    if (x <= -kBound) return 0.0;
    const auto idx =
        static_cast<std::size_t>((x + kBound) / (2.0 * kBound) * (kSize - 1) + 0.5);
    return table_[idx];
  }

 private:
  static constexpr std::size_t kSize = 2048;
  static constexpr double kBound = 6.0;
  double table_[kSize];
};

const SigmoidTable& sigmoid() {
  static const SigmoidTable table;
  return table;
}

/// Murmur3-style 64-bit finalizer: full-avalanche mix for counter-based
/// per-sample seeds. SplitMix64 reseeding alone would hand adjacent step
/// indices overlapping state windows; the finalizer decorrelates them.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Seed for SGD step `step`: a pure function of (base seed, step index), so
/// the sample sequence is identical for every thread count and partition.
constexpr std::uint64_t sample_seed(std::uint64_t base, std::uint64_t step) noexcept {
  return mix64(base ^ mix64(step + 0x9e3779b97f4a7c15ULL));
}

/// Everything run_sgd reads about the graph: the edge endpoints as
/// struct-of-arrays (for a CSR arena these spans alias the mapped file —
/// the sampler touches no deserialized copy) plus the samplers built over
/// edge weights and noise degrees.
struct TrainContext {
  std::span<const std::uint32_t> edge_u;
  std::span<const std::uint32_t> edge_v;
  std::size_t vertex_count = 0;
  const LineConfig& config;
  AliasTable edge_sampler;
  AliasTable noise_sampler;
  std::size_t steps = 0;
};

/// Pending updates routed to one destination shard by one logical lane:
/// keys[i] = (vertex << 1) | is_context, deltas holds dim floats per key in
/// the order the steps emitted them.
struct DeltaShard {
  std::vector<std::uint32_t> keys;
  std::vector<float> deltas;

  void clear() noexcept {
    keys.clear();
    deltas.clear();
  }
};

/// One SGD objective pass (first- or second-order) writing `dim`-wide rows
/// into `vertex` (and using `context` when second_order).
///
/// Deterministically parallel: steps run in fixed-size batches. Within a
/// batch every step draws from its own counter-based Rng (sample_seed), reads
/// the embedding state frozen at the last barrier, and emits its updates as
/// delta entries routed to destination shards (shard = vertex % lanes). At
/// the barrier, shard s is applied by walking lanes in order and each lane's
/// entries in emission order — i.e. ascending global step order per
/// destination row. Every float add therefore lands in the same order no
/// matter how many OS threads ran the batch, how the batch was partitioned,
/// or how many shards exist: the result is bit-identical for any
/// config.threads, which is what lets run --resume train LINE multi-threaded
/// and still byte-match an uninterrupted run.
void run_sgd(TrainContext& ctx, std::vector<float>& vertex, std::vector<float>& context,
             std::size_t dim, bool second_order) {
  const auto& config = ctx.config;
  const std::size_t total = ctx.steps;
  const double lr_floor = config.initial_lr * config.min_lr_fraction;
  const std::uint64_t base_seed =
      config.seed ^ (second_order ? 0xA5A5A5A5ULL : 0x5A5A5A5AULL);

  // One relaxed add per SGD sample: an LINE step does O(dim * negatives)
  // flops, so the sharded counter disappears into it; disabled runs pay a
  // predicted branch.
  static obs::Counter& samples_counter = obs::metrics().counter("embed.line.samples");

  // Logical lanes come from the config knob, not the pool size: a 4-lane run
  // on a 1-core box exercises the same buffers, shard routing, and apply
  // order as on a 4-core box, so determinism tests are never vacuous. 0
  // means one lane per hardware thread (output is identical either way).
  const std::size_t lanes =
      config.threads != 0 ? config.threads : util::resolve_threads(0);
  // Updates within a batch read the last barrier's state, so per-row
  // staleness is roughly batch_size * (negatives + 2) / vertex_count
  // accumulated stale steps. Tying the batch to the vertex count keeps that
  // ratio constant: small dense test graphs take many cheap barriers while
  // big graphs amortize barriers over 4096-step batches.
  const std::size_t batch_size =
      std::clamp<std::size_t>(ctx.vertex_count / 4, 64, 4096);

  std::vector<std::vector<DeltaShard>> buffers(lanes, std::vector<DeltaShard>(lanes));
  std::vector<std::vector<float>> grads(lanes, std::vector<float>(dim));

  const auto compute_lane = [&](std::size_t lane, std::size_t b0, std::size_t b1) {
    const std::size_t n = b1 - b0;
    const std::size_t chunk = (n + lanes - 1) / lanes;
    const std::size_t lo = b0 + lane * chunk;
    const std::size_t hi = std::min(b1, lo + chunk);
    if (lo >= hi) return;
    auto& shards = buffers[lane];
    float* const grad = grads[lane].data();
    const float* const tgt_base = second_order ? context.data() : vertex.data();
    for (std::size_t step = lo; step < hi; ++step) {
      samples_counter.add(1);
      util::Rng rng{sample_seed(base_seed, step)};
      const double progress = static_cast<double>(step) / static_cast<double>(total);
      const double lr = std::max(lr_floor, config.initial_lr * (1.0 - progress));

      const std::size_t ei = ctx.edge_sampler.sample(rng);
      // Random orientation: the graph is undirected, LINE's updates are not.
      const bool flip = rng.bernoulli(0.5);
      const graph::VertexId src = flip ? ctx.edge_v[ei] : ctx.edge_u[ei];
      const graph::VertexId dst = flip ? ctx.edge_u[ei] : ctx.edge_v[ei];

      const float* const src_vec = vertex.data() + static_cast<std::size_t>(src) * dim;
      std::fill_n(grad, dim, 0.0f);

      for (std::size_t k = 0; k <= config.negatives; ++k) {
        graph::VertexId target = 0;
        double label = 0.0;
        if (k == 0) {
          target = dst;
          label = 1.0;
        } else {
          target = static_cast<graph::VertexId>(ctx.noise_sampler.sample(rng));
          if (target == dst || target == src) continue;
        }
        const float* const tgt_vec = tgt_base + static_cast<std::size_t>(target) * dim;
        const double dot = util::simd::dot(src_vec, tgt_vec, dim);
        const auto coeff = static_cast<float>((label - sigmoid()(dot)) * lr);
        util::simd::axpy(coeff, tgt_vec, grad, dim);
        DeltaShard& ds = shards[target % lanes];
        ds.keys.push_back((static_cast<std::uint32_t>(target) << 1) |
                          (second_order ? 1u : 0u));
        ds.deltas.resize(ds.deltas.size() + dim);
        util::simd::scale(coeff, src_vec, ds.deltas.data() + ds.deltas.size() - dim, dim);
      }
      DeltaShard& ds = shards[src % lanes];
      ds.keys.push_back(static_cast<std::uint32_t>(src) << 1);
      ds.deltas.insert(ds.deltas.end(), grad, grad + dim);
    }
  };

  const auto apply_shard = [&](std::size_t shard) {
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      DeltaShard& ds = buffers[lane][shard];
      for (std::size_t i = 0; i < ds.keys.size(); ++i) {
        const std::uint32_t key = ds.keys[i];
        float* const dst = ((key & 1u) ? context.data() : vertex.data()) +
                           static_cast<std::size_t>(key >> 1) * dim;
        util::simd::axpy(1.0f, ds.deltas.data() + i * dim, dst, dim);
      }
      ds.clear();
    }
  };

  const char* const span_name =
      second_order ? "embed.line.worker.order2" : "embed.line.worker.order1";

  if (lanes == 1) {
    OBS_SPAN(span_name);
    for (std::size_t b0 = 0; b0 < total; b0 += batch_size) {
      compute_lane(0, b0, std::min(total, b0 + batch_size));
      apply_shard(0);
    }
    return;
  }

  util::ThreadPool pool{config.threads};  // OS workers capped at hardware
  for (std::size_t b0 = 0; b0 < total; b0 += batch_size) {
    const std::size_t b1 = std::min(total, b0 + batch_size);
    pool.parallel_for(0, lanes, [&](std::size_t wlo, std::size_t whi, std::size_t) {
      OBS_SPAN(span_name);
      for (std::size_t lane = wlo; lane < whi; ++lane) compute_lane(lane, b0, b1);
    });
    // Barrier: parallel_for joined, every lane's deltas are complete.
    pool.parallel_for(0, lanes, [&](std::size_t slo, std::size_t shi, std::size_t) {
      for (std::size_t shard = slo; shard < shi; ++shard) apply_shard(shard);
    });
  }
}

/// Train one objective and return the raw (unnormalized) embedding block.
std::vector<float> train_order(TrainContext& ctx, std::size_t dim, bool second_order) {
  const std::size_t n = ctx.vertex_count;
  std::vector<float> vertex(n * dim);
  std::vector<float> context;
  util::Rng rng{ctx.config.seed * 7919 + (second_order ? 1 : 0)};
  for (auto& x : vertex) {
    x = static_cast<float>((rng.uniform() - 0.5) / static_cast<double>(dim));
  }
  if (second_order) context.assign(n * dim, 0.0f);  // word2vec-style zero init
  run_sgd(ctx, vertex, context, dim, second_order);
  return vertex;
}

}  // namespace

EmbeddingMatrix train_line(const graph::WeightedGraph& g, const LineConfig& config) {
  // Convert to the CSR form so both entry points run the same core: the
  // edge struct-of-arrays preserves g.edges() order, so the edge sampler
  // draws the identical sequence.
  std::vector<std::uint32_t> edge_u;
  std::vector<std::uint32_t> edge_v;
  std::vector<double> edge_w;
  edge_u.reserve(g.edge_count());
  edge_v.reserve(g.edge_count());
  edge_w.reserve(g.edge_count());
  for (const auto& e : g.edges()) {
    edge_u.push_back(e.u);
    edge_v.push_back(e.v);
    edge_w.push_back(e.weight);
  }
  return train_line(
      util::CsrGraph::build(g.vertex_count(), edge_u, edge_v, edge_w, g.names().names()),
      config);
}

EmbeddingMatrix train_line(const util::CsrGraph& g, const LineConfig& config) {
  OBS_SPAN("embed.line.train");
  if (config.dimension == 0) throw std::invalid_argument{"train_line: zero dimension"};
  if (config.order == LineOrder::kBoth && config.dimension < 2) {
    throw std::invalid_argument{"train_line: dimension too small to split"};
  }
  if (config.initial_lr <= 0.0) throw std::invalid_argument{"train_line: non-positive lr"};

  std::vector<std::string> names;
  if (g.has_names()) {
    names = g.names_copy();
  } else {
    names.reserve(g.vertex_count());
    for (std::size_t v = 0; v < g.vertex_count(); ++v) names.push_back(std::to_string(v));
  }
  EmbeddingMatrix out{std::move(names), config.dimension};
  if (g.vertex_count() == 0) return out;
  if (g.edge_count() == 0) return out;  // all isolated -> all-zero rows

  // Samplers shared by both objectives. Edge weights come straight from
  // the arena's EDGW section; noise degrees from the WDEG section.
  std::vector<double> noise(g.vertex_count());
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    noise[v] = std::pow(g.weighted_degree(static_cast<std::uint32_t>(v)),
                        config.noise_power);
  }
  TrainContext ctx{g.edge_u(),           g.edge_v(),        g.vertex_count(), config,
                   AliasTable{g.edge_w()}, AliasTable{noise}, 0};
  ctx.steps = config.total_samples != 0 ? config.total_samples
                                        : config.samples_per_edge * g.edge_count();
  ctx.steps = std::max<std::size_t>(ctx.steps, 1);

  const auto write_block = [&](const std::vector<float>& block, std::size_t dim,
                               std::size_t offset) {
    for (std::size_t v = 0; v < g.vertex_count(); ++v) {
      auto dst = out.row(v);
      if (g.degree(static_cast<std::uint32_t>(v)) == 0) continue;  // keep zeros
      for (std::size_t d = 0; d < dim; ++d) dst[offset + d] = block[v * dim + d];
    }
  };

  if (config.order == LineOrder::kFirst) {
    write_block(train_order(ctx, config.dimension, false), config.dimension, 0);
  } else if (config.order == LineOrder::kSecond) {
    write_block(train_order(ctx, config.dimension, true), config.dimension, 0);
  } else {
    const std::size_t first_dim = config.dimension / 2;
    const std::size_t second_dim = config.dimension - first_dim;
    write_block(train_order(ctx, first_dim, false), first_dim, 0);
    write_block(train_order(ctx, second_dim, true), second_dim, first_dim);
  }
  if (config.normalize_output) out.l2_normalize();
  return out;
}

}  // namespace dnsembed::embed
