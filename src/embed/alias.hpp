// Walker's alias method: O(n) construction, O(1) sampling from a discrete
// distribution. LINE samples millions of edges and negative vertices per
// training run, so constant-time draws matter.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace dnsembed::embed {

class AliasTable {
 public:
  /// Build from non-negative weights (at least one must be positive). The
  /// span form reads straight from mapped arena sections (util/csr.hpp).
  explicit AliasTable(std::span<const double> weights);
  explicit AliasTable(const std::vector<double>& weights)
      : AliasTable{std::span<const double>{weights}} {}

  /// Draw an index with probability proportional to its weight.
  std::size_t sample(util::Rng& rng) const noexcept;

  std::size_t size() const noexcept { return prob_.size(); }

  /// Exact sampling probability of index i (for tests).
  double probability(std::size_t i) const noexcept;

 private:
  std::vector<double> prob_;        // acceptance probability per bucket
  std::vector<std::size_t> alias_;  // fallback index per bucket
  std::vector<double> pmf_;         // normalized input, kept for probability()
};

}  // namespace dnsembed::embed
