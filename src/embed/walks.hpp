// Random-walk corpus generation over weighted graphs: uniform weighted
// walks (DeepWalk) and p/q-biased second-order walks (node2vec, via
// rejection sampling so no per-edge alias tables are materialized).
// Used by the embedding-method ablation (DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/weighted_graph.hpp"

namespace dnsembed::embed {

struct WalkConfig {
  std::size_t walks_per_vertex = 10;
  std::size_t walk_length = 40;

  /// node2vec return parameter (bias 1/p toward revisiting the previous
  /// vertex) and in-out parameter (bias 1/q toward leaving the previous
  /// vertex's neighborhood). p = q = 1 degenerates to DeepWalk.
  double p = 1.0;
  double q = 1.0;

  std::uint64_t seed = 1;
};

/// Generate walks starting from every non-isolated vertex, in vertex order,
/// walks_per_vertex times. Walks never include isolated vertices.
std::vector<std::vector<graph::VertexId>> generate_walks(const graph::WeightedGraph& g,
                                                         const WalkConfig& config);

}  // namespace dnsembed::embed
