// Skip-gram with negative sampling (word2vec-style) over a random-walk
// corpus. Combined with embed/walks.hpp this yields DeepWalk (p=q=1) and
// node2vec embedders, the ablation baselines against LINE.
#pragma once

#include <cstdint>
#include <vector>

#include "embed/embedding.hpp"
#include "graph/weighted_graph.hpp"

namespace dnsembed::embed {

struct SgnsConfig {
  std::size_t dimension = 128;
  /// Maximum context window; the effective window per center position is
  /// drawn uniformly from [1, window] as in word2vec.
  std::size_t window = 5;
  std::size_t negatives = 5;
  std::size_t epochs = 2;
  double initial_lr = 0.025;
  double min_lr_fraction = 1e-4;
  /// Noise distribution exponent over corpus frequencies.
  double noise_power = 0.75;
  std::uint64_t seed = 1;
  bool normalize_output = true;
};

/// Train skip-gram embeddings for the vertices of g from the given walks.
/// Vertices absent from every walk (isolated) get zero vectors.
EmbeddingMatrix train_sgns(const graph::WeightedGraph& g,
                           const std::vector<std::vector<graph::VertexId>>& walks,
                           const SgnsConfig& config);

}  // namespace dnsembed::embed
