// Unified entry point over the three embedding methods, so the pipeline and
// the ablation benches can switch embedders with one config field.
#pragma once

#include "embed/embedding.hpp"
#include "embed/line.hpp"
#include "embed/sgns.hpp"
#include "embed/walks.hpp"
#include "graph/io.hpp"
#include "graph/weighted_graph.hpp"
#include "util/csr.hpp"

namespace dnsembed::embed {

enum class EmbedMethod { kLine, kDeepWalk, kNode2Vec };

struct EmbedConfig {
  EmbedMethod method = EmbedMethod::kLine;
  std::size_t dimension = 128;
  std::uint64_t seed = 1;

  /// Method-specific knobs; `dimension` and `seed` above override the
  /// corresponding fields at dispatch.
  LineConfig line;
  WalkConfig walk;
  SgnsConfig sgns;
};

/// Embed a similarity graph with the selected method.
inline EmbeddingMatrix embed_graph(const graph::WeightedGraph& g, const EmbedConfig& config) {
  switch (config.method) {
    case EmbedMethod::kLine: {
      LineConfig line = config.line;
      line.dimension = config.dimension;
      line.seed = config.seed;
      return train_line(g, line);
    }
    case EmbedMethod::kDeepWalk:
    case EmbedMethod::kNode2Vec: {
      WalkConfig walk = config.walk;
      walk.seed = config.seed;
      if (config.method == EmbedMethod::kDeepWalk) {
        walk.p = 1.0;
        walk.q = 1.0;
      }
      SgnsConfig sgns = config.sgns;
      sgns.dimension = config.dimension;
      sgns.seed = config.seed + 1;
      return train_sgns(g, generate_walks(g, walk), sgns);
    }
  }
  throw std::invalid_argument{"embed_graph: unknown method"};
}

/// Embed a CSR similarity graph (typically memory-mapped from a csr-graph
/// artifact). LINE consumes the CSR directly — its edge sampler reads the
/// mapped edge sections with no conversion copy — while the walk methods
/// materialize a mutable adjacency-list graph first.
inline EmbeddingMatrix embed_graph(const util::CsrGraph& g, const EmbedConfig& config) {
  if (config.method == EmbedMethod::kLine) {
    LineConfig line = config.line;
    line.dimension = config.dimension;
    line.seed = config.seed;
    return train_line(g, line);
  }
  return embed_graph(graph::from_csr(g), config);
}

}  // namespace dnsembed::embed
