// One-mode projection of a bipartite graph onto one vertex set with Jaccard
// similarity weights (paper Eq. 1-3):
//
//   sim(d_i, d_j) = |N(d_i) ∩ N(d_j)| / |N(d_i) ∪ N(d_j)|
//
// where N(d) is the set of opposite-side neighbors. The pipeline keeps
// domains on the RIGHT side of every bipartite graph (hosts x domains,
// IPs x domains, minutes x domains), so project_right() yields the three
// domain similarity graphs; project_left() gives e.g. host similarity
// (shared domain interests, Fig. 3c).
//
// Algorithm: inverted-index pair counting. For every pivot vertex on the
// opposite side, all pairs of its neighbors get their intersection count
// incremented; Jaccard follows from intersection and the two degrees. Cost
// is sum over pivots of deg², so an optional max_pivot_degree cap skips hub
// pivots (which contribute near-zero similarity anyway but dominate cost).
//
// Engine: pair counting runs on a sharded flat-hash engine. Workers scan
// contiguous pivot ranges and route each packed (u, v) key into one of T
// worker-local util::FlatCounter shards chosen from the key hash; a second
// parallel pass merges each shard across workers and emits edges. Because
// intersection counts are exact integers and the edge list is sorted by
// (u, v) before emission, the output WeightedGraph is identical for every
// thread count.
#pragma once

#include <cstddef>

#include "graph/bipartite.hpp"
#include "graph/weighted_graph.hpp"

namespace dnsembed::graph {

/// Set-similarity measure for the projection weight. The paper uses
/// Jaccard (Eq. 1-3); cosine and overlap are ablation alternatives.
enum class SimilarityMeasure {
  kJaccard,  // |A ∩ B| / |A ∪ B|
  kCosine,   // |A ∩ B| / sqrt(|A| |B|)
  kOverlap,  // |A ∩ B| / min(|A|, |B|)
};

struct ProjectionOptions {
  SimilarityMeasure measure = SimilarityMeasure::kJaccard;

  /// Edges with similarity strictly below this are dropped.
  /// 0 keeps every pair with a non-empty intersection.
  double min_similarity = 0.0;

  /// Skip pivot vertices with more neighbors than this (0 = unlimited).
  /// When pivots are skipped the similarity is a lower bound; with the
  /// paper's pruning rules applied hubs are already gone, so the default
  /// keeps exact Jaccard.
  std::size_t max_pivot_degree = 0;

  /// Worker threads for pair counting: 1 = run inline on the calling
  /// thread, 0 = one per hardware thread. The result is deterministic —
  /// the same WeightedGraph (same edges, same order) for every value.
  std::size_t threads = 1;
};

/// Project onto the right vertex set. Every right vertex appears in the
/// result (possibly isolated); result vertex ids equal the bipartite right
/// ids and names are preserved. Edges are emitted sorted by (u, v).
WeightedGraph project_right(const BipartiteGraph& g, const ProjectionOptions& options = {});

/// Project onto the left vertex set (ids equal the bipartite left ids).
WeightedGraph project_left(const BipartiteGraph& g, const ProjectionOptions& options = {});

/// Single-threaded std::unordered_map baseline, kept as the correctness
/// reference for the sharded engine (tests compare edge-for-edge after
/// sorting) and as the benchmark baseline. Ignores options.threads; edge
/// order follows map iteration order.
WeightedGraph project_right_reference(const BipartiteGraph& g,
                                      const ProjectionOptions& options = {});

}  // namespace dnsembed::graph
