// One-mode projection of a bipartite graph onto one vertex set with Jaccard
// similarity weights (paper Eq. 1-3):
//
//   sim(d_i, d_j) = |N(d_i) ∩ N(d_j)| / |N(d_i) ∪ N(d_j)|
//
// where N(d) is the set of opposite-side neighbors. The pipeline keeps
// domains on the RIGHT side of every bipartite graph (hosts x domains,
// IPs x domains, minutes x domains), so project_right() yields the three
// domain similarity graphs; project_left() gives e.g. host similarity
// (shared domain interests, Fig. 3c).
//
// Algorithm: inverted-index pair counting. For every pivot vertex on the
// opposite side, all pairs of its neighbors get their intersection count
// incremented; Jaccard follows from intersection and the two degrees. Cost
// is sum over pivots of deg², so an optional max_pivot_degree cap skips hub
// pivots (which contribute near-zero similarity anyway but dominate cost).
//
// Engine: pair counting runs on a sharded flat-hash engine. Workers scan
// contiguous pivot ranges and route each packed (u, v) key into one of T
// worker-local util::FlatCounter shards chosen from the key hash; a second
// parallel pass merges each shard across workers and emits edges. Because
// intersection counts are exact integers and the edge list is sorted by
// (u, v) before emission, the output WeightedGraph is identical for every
// thread count.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "graph/bipartite.hpp"
#include "graph/weighted_graph.hpp"

namespace dnsembed::graph {

/// Set-similarity measure for the projection weight. The paper uses
/// Jaccard (Eq. 1-3); cosine and overlap are ablation alternatives.
enum class SimilarityMeasure {
  kJaccard,  // |A ∩ B| / |A ∪ B|
  kCosine,   // |A ∩ B| / sqrt(|A| |B|)
  kOverlap,  // |A ∩ B| / min(|A|, |B|)
};

/// Similarity from an exact intersection count and the two set sizes.
/// Shared by the exact engine and the sketched backend's verification pass,
/// so both emit bit-identical weights for the same pair.
inline double set_similarity(SimilarityMeasure measure, std::size_t inter, std::size_t deg_u,
                             std::size_t deg_v) noexcept {
  switch (measure) {
    case SimilarityMeasure::kJaccard:
      return static_cast<double>(inter) / static_cast<double>(deg_u + deg_v - inter);
    case SimilarityMeasure::kCosine:
      return static_cast<double>(inter) /
             std::sqrt(static_cast<double>(deg_u) * static_cast<double>(deg_v));
    case SimilarityMeasure::kOverlap:
      return static_cast<double>(inter) / static_cast<double>(std::min(deg_u, deg_v));
  }
  return 0.0;
}

/// Projection backend.
enum class ProjectionMode {
  /// Inverted-index pair counting — every co-occurring pair is counted, so
  /// every similarity is exact. O(sum over pivots of deg²).
  kExact,
  /// Minhash signatures + b-bit LSH banding generate candidate pairs, then
  /// only candidates are verified with exact intersections (graph/sketch):
  /// sublinear in the pair count, the million-domain route. Emitted weights
  /// are exact; pairs the sketch misses (probability falls with signature
  /// size) are absent, so the result is a high-recall subgraph.
  kSketched,
};

/// Minhash/LSH parameters for ProjectionMode::kSketched.
struct SketchOptions {
  /// Minhash functions per vertex (the signature length k). Recall of a
  /// pair with Jaccard J under banding is 1 - (1 - J^rows)^bands with
  /// rows = signature_size / bands.
  /// The default (64, 32) gives rows = 2 per band: candidate recall is
  /// effectively total above J ~ 0.3 at 64 bytes/vertex. Raise
  /// signature_size at fixed bands (rows = 4+) for high-precision floors
  /// where sub-0.5 similarities should not even become candidates.
  std::size_t signature_size = 64;

  /// LSH bands. Two vertices become a candidate pair when any band of
  /// their compressed signatures collides. Must be <= signature_size;
  /// signature entries beyond bands * (signature_size / bands) are unused.
  std::size_t bands = 32;

  /// b-bit minwise compression: low bits kept per signature entry before
  /// banding (1..8). Smaller b shrinks the stored sketch and adds only
  /// random single-band collisions, which verification filters out.
  std::size_t bits = 8;

  /// Keep at most this many strongest neighbors per vertex after
  /// verification (0 = keep all). An edge survives when it ranks in the
  /// top-k of EITHER endpoint (kNN-graph union rule).
  std::size_t top_k = 0;

  /// Seed of the counter-based hash family; same seed -> bit-identical
  /// signatures, candidates, and output at every thread count.
  std::uint64_t seed = 0x5eed5eedULL;
};

struct ProjectionOptions {
  SimilarityMeasure measure = SimilarityMeasure::kJaccard;

  /// Edges with similarity strictly below this are dropped.
  /// 0 keeps every pair with a non-empty intersection.
  double min_similarity = 0.0;

  /// Skip pivot vertices with more neighbors than this (0 = unlimited).
  /// When pivots are skipped the similarity is a lower bound; with the
  /// paper's pruning rules applied hubs are already gone, so the default
  /// keeps exact Jaccard.
  std::size_t max_pivot_degree = 0;

  /// Worker threads for pair counting: 1 = run inline on the calling
  /// thread, 0 = one per hardware thread. The result is deterministic —
  /// the same WeightedGraph (same edges, same order) for every value.
  std::size_t threads = 1;

  /// Backend: exact pair counting or sketched candidate generation. Fields
  /// below are appended so existing designated initializers keep working.
  ProjectionMode mode = ProjectionMode::kExact;

  /// Parameters of the sketched backend (ignored when mode == kExact).
  SketchOptions sketch;

  /// Pair-shard partition for multi-process projection: only pairs OWNED by
  /// shard pair_shard_index out of pair_shard_count are counted and
  /// emitted. A pair (u, v), u < v, is owned by xxhash64(name(u)) %
  /// pair_shard_count — a function of the vertex NAME, so the partition is
  /// stable across runs and worker counts. Shards are disjoint and
  /// exhaustive, and each shard still sees full pivot neighborhoods (only
  /// the smaller endpoint is filtered), so intersection counts and degrees
  /// are exact: the union of the per-shard edge lists, re-sorted by (u, v),
  /// is bit-identical to an unsharded projection. Exact mode only; the
  /// supervisor falls back to one shard per channel for kSketched.
  std::size_t pair_shard_index = 0;
  std::size_t pair_shard_count = 1;
};

/// Project onto the right vertex set. Every right vertex appears in the
/// result (possibly isolated); result vertex ids equal the bipartite right
/// ids and names are preserved. Edges are emitted sorted by (u, v).
WeightedGraph project_right(const BipartiteGraph& g, const ProjectionOptions& options = {});

/// Project onto the left vertex set (ids equal the bipartite left ids).
WeightedGraph project_left(const BipartiteGraph& g, const ProjectionOptions& options = {});

/// Single-threaded std::unordered_map baseline, kept as the correctness
/// reference for the sharded engine (tests compare edge-for-edge after
/// sorting) and as the benchmark baseline. Ignores options.threads; edge
/// order follows map iteration order.
WeightedGraph project_right_reference(const BipartiteGraph& g,
                                      const ProjectionOptions& options = {});

}  // namespace dnsembed::graph
