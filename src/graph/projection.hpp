// One-mode projection of a bipartite graph onto one vertex set with Jaccard
// similarity weights (paper Eq. 1-3):
//
//   sim(d_i, d_j) = |N(d_i) ∩ N(d_j)| / |N(d_i) ∪ N(d_j)|
//
// where N(d) is the set of opposite-side neighbors. The pipeline keeps
// domains on the RIGHT side of every bipartite graph (hosts x domains,
// IPs x domains, minutes x domains), so project_right() yields the three
// domain similarity graphs; project_left() gives e.g. host similarity
// (shared domain interests, Fig. 3c).
//
// Algorithm: inverted-index pair counting. For every pivot vertex on the
// opposite side, all pairs of its neighbors get their intersection count
// incremented; Jaccard follows from intersection and the two degrees. Cost
// is sum over pivots of deg², so an optional max_pivot_degree cap skips hub
// pivots (which contribute near-zero similarity anyway but dominate cost).
#pragma once

#include <cstddef>

#include "graph/bipartite.hpp"
#include "graph/weighted_graph.hpp"

namespace dnsembed::graph {

/// Set-similarity measure for the projection weight. The paper uses
/// Jaccard (Eq. 1-3); cosine and overlap are ablation alternatives.
enum class SimilarityMeasure {
  kJaccard,  // |A ∩ B| / |A ∪ B|
  kCosine,   // |A ∩ B| / sqrt(|A| |B|)
  kOverlap,  // |A ∩ B| / min(|A|, |B|)
};

struct ProjectionOptions {
  SimilarityMeasure measure = SimilarityMeasure::kJaccard;

  /// Edges with similarity strictly below this are dropped.
  /// 0 keeps every pair with a non-empty intersection.
  double min_similarity = 0.0;

  /// Skip pivot vertices with more neighbors than this (0 = unlimited).
  /// When pivots are skipped the similarity is a lower bound; with the
  /// paper's pruning rules applied hubs are already gone, so the default
  /// keeps exact Jaccard.
  std::size_t max_pivot_degree = 0;
};

/// Project onto the right vertex set. Every right vertex appears in the
/// result (possibly isolated); result vertex ids equal the bipartite right
/// ids and names are preserved.
WeightedGraph project_right(const BipartiteGraph& g, const ProjectionOptions& options = {});

/// Project onto the left vertex set (ids equal the bipartite left ids).
WeightedGraph project_left(const BipartiteGraph& g, const ProjectionOptions& options = {});

}  // namespace dnsembed::graph
