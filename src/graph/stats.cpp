#include "graph/stats.hpp"

#include <algorithm>
#include <queue>

namespace dnsembed::graph {

GraphSummary summarize(const WeightedGraph& g) {
  GraphSummary s;
  s.vertices = g.vertex_count();
  s.edges = g.edge_count();
  double degree_sum = 0.0;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const auto d = static_cast<double>(g.degree(v));
    degree_sum += d;
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0) ++s.isolated_vertices;
  }
  s.mean_degree = s.vertices > 0 ? degree_sum / static_cast<double>(s.vertices) : 0.0;
  s.mean_edge_weight = s.edges > 0 ? g.total_weight() / static_cast<double>(s.edges) : 0.0;

  const auto components = connected_components(g);
  std::vector<std::size_t> sizes;
  for (const std::size_t c : components) {
    if (c >= sizes.size()) sizes.resize(c + 1, 0);
    ++sizes[c];
  }
  s.components = sizes.size();
  s.largest_component = sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
  return s;
}

std::vector<std::size_t> connected_components(const WeightedGraph& g) {
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> component(g.vertex_count(), kUnvisited);
  std::size_t next = 0;
  std::queue<VertexId> frontier;
  for (VertexId start = 0; start < g.vertex_count(); ++start) {
    if (component[start] != kUnvisited) continue;
    component[start] = next;
    frontier.push(start);
    while (!frontier.empty()) {
      const VertexId v = frontier.front();
      frontier.pop();
      for (const Neighbor& n : g.neighbors(v)) {
        if (component[n.id] == kUnvisited) {
          component[n.id] = next;
          frontier.push(n.id);
        }
      }
    }
    ++next;
  }
  return component;
}

std::vector<bool> right_degree_keep_mask(const BipartiteGraph& g,
                                         const DegreePruneOptions& options) {
  const auto max_degree = static_cast<std::size_t>(
      options.max_left_fraction * static_cast<double>(g.left_count()));
  std::vector<bool> keep(g.right_count(), false);
  for (VertexId r = 0; r < g.right_count(); ++r) {
    const std::size_t d = g.right_degree(r);
    keep[r] = d >= options.min_left_degree && d <= max_degree;
  }
  return keep;
}

}  // namespace dnsembed::graph
