#include "graph/sketch.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/flat_counter.hpp"
#include "util/hash.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace dnsembed::graph {

namespace {

/// Buckets larger than this are skipped instead of expanded into pairs: a
/// bucket of m vertices costs m² candidate emissions, and buckets this big
/// only arise from near-duplicate hub cliques or degenerate band keys whose
/// pairs would be found through other bands anyway.
constexpr std::size_t kMaxBucketVertices = 2048;

/// Sentinel band key for vertices with no eligible pivots: their rows never
/// enter a bucket (otherwise every empty vertex would collide with every
/// other one and form a giant candidate clique).
constexpr std::uint64_t kNoKey = ~std::uint64_t{0};

/// Uniform view of the projection side (right_side picks which bipartite
/// set gets projected); pivots are the opposite side.
struct SideView {
  const BipartiteGraph& g;
  bool right_side;

  std::size_t side_count() const { return right_side ? g.right_count() : g.left_count(); }
  std::size_t pivot_count() const { return right_side ? g.left_count() : g.right_count(); }
  std::span<const VertexId> side_neighbors(VertexId v) const {
    return right_side ? g.right_neighbors(v) : g.left_neighbors(v);
  }
  std::size_t side_degree(VertexId v) const {
    return right_side ? g.right_degree(v) : g.left_degree(v);
  }
  std::size_t pivot_degree(VertexId p) const {
    return right_side ? g.left_degree(p) : g.right_degree(p);
  }
  const std::string& side_name(VertexId v) const {
    return right_side ? g.right_names().name(v) : g.left_names().name(v);
  }
};

void validate_sketch_options(const SketchOptions& s) {
  if (s.signature_size == 0) {
    throw std::invalid_argument{"sketch: signature_size must be at least 1"};
  }
  if (s.bands == 0 || s.bands > s.signature_size) {
    throw std::invalid_argument{"sketch: bands must be in [1, signature_size]"};
  }
  if (s.bits == 0 || s.bits > 8) {
    throw std::invalid_argument{"sketch: bits must be in [1, 8]"};
  }
}

/// Run fn over [0, count) — inline when the caller resolved a single
/// thread, else through the pool. fn(lo, hi, worker) with worker < threads.
template <typename Fn>
void run_ranges(util::ThreadPool* pool, std::size_t count, const Fn& fn) {
  if (pool == nullptr) {
    fn(0, count, 0);
  } else {
    pool->parallel_for(0, count, fn);
  }
}

struct Sketch {
  /// Row-major side_count x signature_size b-bit compressed entries.
  std::vector<std::uint8_t> sig;
  /// Eligible (non-hub) pivot count per side vertex; 0 means the vertex
  /// never enters banding.
  std::vector<std::uint32_t> eligible;
};

Sketch compute_sketch(const SideView& view, const ProjectionOptions& options,
                      util::ThreadPool* pool, std::size_t threads) {
  OBS_SPAN("graph.sketch.sign");
  const SketchOptions& s = options.sketch;
  const std::size_t k = s.signature_size;
  const std::size_t side_count = view.side_count();
  const std::size_t pivot_count = view.pivot_count();

  const auto hub = [&](VertexId p) {
    return options.max_pivot_degree != 0 && view.pivot_degree(p) > options.max_pivot_degree;
  };

  // Counter-based hash family: h_j(p) = low32(mix64(seed_j ^ mix64(p + 1))).
  // No stored permutations — the whole family is a function of the seed, so
  // signatures are reproducible from (seed, graph) alone.
  std::vector<std::uint64_t> seeds(k);
  for (std::size_t j = 0; j < k; ++j) seeds[j] = util::mix64(s.seed + j + 1);

  // Per-pivot hash rows, precomputed once so the signature fold below is one
  // SIMD min pass per bipartite incidence. Hub pivots keep a zero row that
  // is never read.
  std::vector<std::uint32_t> hash_rows(pivot_count * k);
  run_ranges(pool, pivot_count, [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t p = lo; p < hi; ++p) {
      if (hub(static_cast<VertexId>(p))) continue;
      const std::uint64_t mixed_pivot = util::mix64(static_cast<std::uint64_t>(p) + 1);
      std::uint32_t* row = hash_rows.data() + p * k;
      for (std::size_t j = 0; j < k; ++j) {
        row[j] = static_cast<std::uint32_t>(util::mix64(seeds[j] ^ mixed_pivot));
      }
    }
  });

  // Domain-major fold: each worker owns a contiguous vertex range and a
  // private scratch row, so the pass is race-free and the result depends
  // only on (seed, graph) — bit-identical at every thread count.
  Sketch out;
  out.sig.assign(side_count * k, 0xFF);
  out.eligible.assign(side_count, 0);
  const std::uint32_t mask = s.bits == 8 ? 0xFFu : ((1u << s.bits) - 1u);
  std::vector<std::vector<std::uint32_t>> scratch(threads, std::vector<std::uint32_t>(k));
  run_ranges(pool, side_count, [&](std::size_t lo, std::size_t hi, std::size_t worker) {
    std::uint32_t* row = scratch[worker].data();
    for (std::size_t d = lo; d < hi; ++d) {
      std::uint32_t eligible = 0;
      std::fill(row, row + k, 0xFFFFFFFFu);
      for (const VertexId p : view.side_neighbors(static_cast<VertexId>(d))) {
        if (hub(p)) continue;
        util::simd::min_u32(hash_rows.data() + static_cast<std::size_t>(p) * k, row, k);
        ++eligible;
      }
      out.eligible[d] = eligible;
      if (eligible == 0) continue;  // keep the all-0xFF marker row
      std::uint8_t* dst = out.sig.data() + d * k;
      for (std::size_t j = 0; j < k; ++j) {
        dst[j] = static_cast<std::uint8_t>(row[j] & mask);
      }
    }
  });
  return out;
}

struct BandEntry {
  std::uint64_t key;
  std::uint32_t vertex;
};

/// Distinct candidate pairs packed as (u << 32) | v with u < v, sorted.
std::vector<std::uint64_t> band_candidates(const Sketch& sketch, const SketchOptions& s,
                                           std::size_t side_count, util::ThreadPool* pool) {
  OBS_SPAN("graph.sketch.band");
  static obs::Counter& candidates_counter = obs::metrics().counter("graph.sketch.candidates");
  static obs::Counter& oversize_counter = obs::metrics().counter("graph.sketch.oversize_buckets");

  const std::size_t k = s.signature_size;
  const std::size_t rows = k / s.bands;

  // One entry per (vertex, band), laid out band-major so each band owns a
  // contiguous shard; ineligible vertices get the sentinel key so they sort
  // to the end and are skipped by the bucket scan.
  std::vector<BandEntry> entries(side_count * s.bands);
  run_ranges(pool, side_count, [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t d = lo; d < hi; ++d) {
      if (sketch.eligible[d] == 0) {
        for (std::size_t b = 0; b < s.bands; ++b) {
          entries[b * side_count + d] = {kNoKey, static_cast<std::uint32_t>(d)};
        }
        continue;
      }
      const std::uint8_t* sig = sketch.sig.data() + d * k;
      for (std::size_t b = 0; b < s.bands; ++b) {
        // Band index folded into the hash seed: equal byte runs in
        // DIFFERENT bands must not land in the same bucket.
        const std::string_view slice{reinterpret_cast<const char*>(sig + b * rows), rows};
        std::uint64_t key = util::xxhash64(slice, util::mix64(s.seed ^ (b + 1)));
        if (key == kNoKey) --key;  // keep the sentinel unambiguous
        entries[b * side_count + d] = {key, static_cast<std::uint32_t>(d)};
      }
    }
  });

  // Per-band shard sort + k-way merge instead of one global sort: the shards
  // sort in parallel and the merge is a linear pass over a bands-sized heap.
  // Each shard's contents are a pure function of (seed, graph) and the merge
  // comparator (key, vertex, band) is a total order, so the merged sequence
  // is bit-identical at any thread count.
  const auto entry_less = [](const BandEntry& a, const BandEntry& b) {
    return a.key != b.key ? a.key < b.key : a.vertex < b.vertex;
  };
  run_ranges(pool, s.bands, [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t b = lo; b < hi; ++b) {
      std::sort(entries.begin() + b * side_count, entries.begin() + (b + 1) * side_count,
                entry_less);
    }
  });

  std::vector<BandEntry> merged;
  merged.reserve(entries.size());
  {
    struct Head {
      BandEntry entry;
      std::uint32_t band;
      std::size_t cursor;  // index of the NEXT entry in this band's shard
    };
    // Max-heap with an inverted comparator pops the smallest head; the band
    // index breaks (key, vertex) ties so the heap order is total.
    const auto head_greater = [](const Head& a, const Head& b) {
      if (a.entry.key != b.entry.key) return a.entry.key > b.entry.key;
      if (a.entry.vertex != b.entry.vertex) return a.entry.vertex > b.entry.vertex;
      return a.band > b.band;
    };
    std::vector<Head> heap;
    heap.reserve(s.bands);
    for (std::size_t b = 0; b < s.bands; ++b) {
      if (side_count == 0) break;
      heap.push_back({entries[b * side_count], static_cast<std::uint32_t>(b),
                      b * side_count + 1});
    }
    std::make_heap(heap.begin(), heap.end(), head_greater);
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), head_greater);
      Head head = heap.back();
      heap.pop_back();
      merged.push_back(head.entry);
      const std::size_t shard_end = (static_cast<std::size_t>(head.band) + 1) * side_count;
      if (head.cursor < shard_end) {
        heap.push_back({entries[head.cursor], head.band, head.cursor + 1});
        std::push_heap(heap.begin(), heap.end(), head_greater);
      }
    }
  }
  entries = std::move(merged);

  // Bucket scan: each run of equal keys is one LSH bucket; every distinct
  // vertex pair inside it becomes a candidate (deduplicated across bands by
  // the FlatCounter — a pair colliding in three bands is verified once).
  util::FlatCounter pairs;
  std::size_t run_start = 0;
  while (run_start < entries.size()) {
    const std::uint64_t key = entries[run_start].key;
    std::size_t run_end = run_start + 1;
    while (run_end < entries.size() && entries[run_end].key == key) ++run_end;
    const std::size_t m = run_end - run_start;
    if (key != kNoKey && m >= 2) {
      if (m > kMaxBucketVertices) {
        oversize_counter.add(1);
      } else {
        for (std::size_t i = run_start; i < run_end; ++i) {
          const std::uint64_t hi_key = static_cast<std::uint64_t>(entries[i].vertex) << 32;
          for (std::size_t j = i + 1; j < run_end; ++j) {
            if (entries[j].vertex == entries[i].vertex) continue;  // cross-band key collision
            pairs.increment(hi_key | entries[j].vertex);
          }
        }
      }
    }
    run_start = run_end;
  }

  std::vector<std::uint64_t> candidates;
  candidates.reserve(pairs.size());
  pairs.for_each([&](std::uint64_t key, std::uint32_t) { candidates.push_back(key); });
  std::sort(candidates.begin(), candidates.end());
  candidates_counter.add(candidates.size());
  return candidates;
}

/// Keep an edge when it ranks in the top-k strongest of EITHER endpoint
/// (kNN-graph union rule). Ties broken by neighbor id, so the prune is
/// deterministic. Preserves the incoming edge order.
void prune_top_k(std::vector<WeightedEdge>& edges, std::size_t side_count, std::size_t top_k) {
  std::vector<std::vector<std::uint32_t>> incident(side_count);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    incident[edges[i].u].push_back(static_cast<std::uint32_t>(i));
    incident[edges[i].v].push_back(static_cast<std::uint32_t>(i));
  }
  std::vector<char> keep(edges.size(), 0);
  for (std::size_t v = 0; v < side_count; ++v) {
    auto& list = incident[v];
    const auto other = [&](std::uint32_t idx) {
      return edges[idx].u == v ? edges[idx].v : edges[idx].u;
    };
    const std::size_t kept = std::min(top_k, list.size());
    std::partial_sort(list.begin(), list.begin() + kept, list.end(),
                      [&](std::uint32_t a, std::uint32_t b) {
                        if (edges[a].weight != edges[b].weight) {
                          return edges[a].weight > edges[b].weight;
                        }
                        return other(a) < other(b);
                      });
    for (std::size_t i = 0; i < kept; ++i) keep[list[i]] = 1;
  }
  std::size_t w = 0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (keep[i]) edges[w++] = edges[i];
  }
  edges.resize(w);
}

}  // namespace

std::vector<std::uint8_t> minhash_signatures(const BipartiteGraph& g, bool right_side,
                                             const ProjectionOptions& options) {
  validate_sketch_options(options.sketch);
  const SideView view{g, right_side};
  std::size_t threads = util::resolve_threads(options.threads);
  threads = std::min(threads, std::max<std::size_t>(1, view.side_count()));
  if (threads == 1) {
    return compute_sketch(view, options, nullptr, 1).sig;
  }
  util::ThreadPool pool{threads};
  return compute_sketch(view, options, &pool, pool.size()).sig;
}

WeightedGraph project_sketched(const BipartiteGraph& g, bool right_side,
                               const ProjectionOptions& options) {
  validate_sketch_options(options.sketch);
  const SideView view{g, right_side};
  const std::size_t side_count = view.side_count();

  WeightedGraph out;
  for (VertexId v = 0; v < side_count; ++v) out.add_vertex(view.side_name(v));

  std::size_t threads = util::resolve_threads(options.threads);
  threads = std::min(threads, std::max<std::size_t>(1, side_count));
  util::ThreadPool* pool = nullptr;
  std::optional<util::ThreadPool> owned_pool;
  if (threads > 1) {
    owned_pool.emplace(threads);
    pool = &*owned_pool;
    threads = pool->size();
  }

  const Sketch sketch = compute_sketch(view, options, pool, threads);
  const std::vector<std::uint64_t> candidates =
      band_candidates(sketch, options.sketch, side_count, pool);

  // Verification: exact intersection over the sorted bipartite adjacency,
  // only for candidate pairs. Each candidate writes its own preallocated
  // slot (weight 0 = rejected), so the pass is parallel yet deterministic.
  static obs::Counter& verified_counter = obs::metrics().counter("graph.sketch.verified");
  static obs::Counter& edges_counter = obs::metrics().counter("graph.sketch.edges");
  std::vector<WeightedEdge> verified(candidates.size());
  run_ranges(pool, candidates.size(), [&](std::size_t lo, std::size_t hi, std::size_t) {
    OBS_SPAN("graph.sketch.verify");
    for (std::size_t i = lo; i < hi; ++i) {
      const auto u = static_cast<VertexId>(candidates[i] >> 32);
      const auto v = static_cast<VertexId>(candidates[i] & 0xFFFFFFFFu);
      const auto nu = view.side_neighbors(u);
      const auto nv = view.side_neighbors(v);
      // Two-pointer intersection; hub pivots are excluded from the count
      // (matching the exact engine, which never visits them) while the
      // denominators stay the FULL degrees — same lower-bound semantics.
      std::size_t inter = 0;
      std::size_t a = 0;
      std::size_t b = 0;
      while (a < nu.size() && b < nv.size()) {
        if (nu[a] < nv[b]) {
          ++a;
        } else if (nv[b] < nu[a]) {
          ++b;
        } else {
          if (options.max_pivot_degree == 0 ||
              view.pivot_degree(nu[a]) <= options.max_pivot_degree) {
            ++inter;
          }
          ++a;
          ++b;
        }
      }
      if (inter == 0) continue;
      const double similarity =
          set_similarity(options.measure, inter, view.side_degree(u), view.side_degree(v));
      if (similarity >= options.min_similarity && similarity > 0.0) {
        verified[i] = {u, v, similarity};
      }
    }
  });
  verified_counter.add(candidates.size());

  // Candidates were sorted by packed (u, v), and both the compaction and the
  // top-k prune preserve order, so the emitted edges are already (u, v)
  // sorted — the same output contract as the exact engine.
  std::vector<WeightedEdge> edges;
  edges.reserve(verified.size());
  for (const WeightedEdge& e : verified) {
    if (e.weight > 0.0) edges.push_back(e);
  }
  if (options.sketch.top_k != 0) {
    prune_top_k(edges, side_count, options.sketch.top_k);
  }
  for (const WeightedEdge& e : edges) out.add_edge_unchecked(e.u, e.v, e.weight);
  edges_counter.add(edges.size());
  return out;
}

}  // namespace dnsembed::graph
