#include "graph/projection.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include <stdexcept>

#include "graph/sketch.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/flat_counter.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace dnsembed::graph {

namespace {

/// Seed of the pair-shard ownership hash (see ProjectionOptions).
constexpr std::uint64_t kPairShardSeed = 0x7061697273ULL;

/// owner[v] for every projection-side vertex, or an empty vector when the
/// projection is unsharded (the common case pays one branch, no table).
template <typename NameFn>
std::vector<std::uint32_t> pair_shard_owners(std::size_t side_count, NameFn&& side_name,
                                             const ProjectionOptions& options) {
  if (options.pair_shard_count <= 1) return {};
  if (options.pair_shard_index >= options.pair_shard_count) {
    throw std::invalid_argument{"projection: pair_shard_index out of range"};
  }
  std::vector<std::uint32_t> owner(side_count);
  for (VertexId v = 0; v < side_count; ++v) {
    owner[v] = static_cast<std::uint32_t>(util::xxhash64(side_name(v), kPairShardSeed) %
                                          options.pair_shard_count);
  }
  return owner;
}

/// Shard for a pair key, derived from the FIRST vertex of the pair only:
/// the inner counting loop emits a run of keys (u, v0..vk) with ascending v
/// for one u, so sharding on u keeps a whole run inside one FlatCounter
/// whose slot_hash probes it sequentially — sharding on the full key would
/// scatter the run across tables and forfeit that locality. mix64's high
/// bits + fastrange keep the shard choice independent of probe slots.
std::size_t shard_of(VertexId u, std::size_t shards) noexcept {
  const std::uint64_t hi = util::mix64(u) >> 32;
  return static_cast<std::size_t>((hi * shards) >> 32);
}

/// Shared implementation: `side_count`/`side_name`/`side_degree` describe
/// the projection side; `pivot_count`/`pivot_neighbors` the opposite side.
///
/// Two-pass sharded counting. Pass 1: each worker scans a contiguous pivot
/// range (ThreadPool::parallel_for chunk) and increments worker-local
/// FlatCounter shards — no two workers ever touch the same table, so the
/// count phase is lock- and atomic-free. Pass 2: each shard index is merged
/// across workers and filtered into per-shard edge vectors, again with
/// disjoint ownership. A final sort by (u, v) makes the output independent
/// of the partition, so any thread count yields the identical graph.
template <typename NameFn, typename DegreeFn, typename PivotNeighborsFn>
WeightedGraph project_impl(std::size_t side_count, NameFn&& side_name, DegreeFn&& side_degree,
                           std::size_t pivot_count, PivotNeighborsFn&& pivot_neighbors,
                           const ProjectionOptions& options) {
  WeightedGraph out;
  for (VertexId v = 0; v < side_count; ++v) out.add_vertex(side_name(v));

  const auto owner = pair_shard_owners(side_count, side_name, options);
  const auto owned = [&](VertexId u) {
    return owner.empty() || owner[u] == options.pair_shard_index;
  };

  std::size_t threads = util::resolve_threads(options.threads);
  threads = std::min(threads, std::max<std::size_t>(1, pivot_count));
  const std::size_t shards = threads;

  // Hot-loop telemetry: one relaxed add per *pivot* (never per pair), so
  // the pair-counting inner loop stays untouched; bench/micro_obs holds the
  // disabled-path overhead under 3%.
  static obs::Counter& pivots_counter = obs::metrics().counter("graph.projection.pivots");
  static obs::Counter& pairs_counter = obs::metrics().counter("graph.projection.pairs");
  static obs::Counter& edges_counter = obs::metrics().counter("graph.projection.edges");
  static obs::Histogram& degree_histogram =
      obs::metrics().histogram("graph.projection.pivot_degree", obs::Registry::size_bounds());

  // Pass 1: count pair intersections into worker-local shards.
  std::vector<std::vector<util::FlatCounter>> local(threads);
  for (auto& w : local) w.resize(shards);
  const auto count_range = [&](std::size_t lo, std::size_t hi, std::size_t worker) {
    OBS_SPAN("graph.projection.count");
    auto& tables = local[worker];
    for (std::size_t pivot = lo; pivot < hi; ++pivot) {
      const auto neighbors = pivot_neighbors(static_cast<VertexId>(pivot));
      pivots_counter.add(1);
      degree_histogram.observe(static_cast<double>(neighbors.size()));
      if (options.max_pivot_degree != 0 && neighbors.size() > options.max_pivot_degree) continue;
      pairs_counter.add(neighbors.size() * (neighbors.size() - 1) / 2);
      constexpr std::size_t kPrefetchDistance = 16;
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        // Pair (neighbors[i], neighbors[j]) with j > i: neighbors[i] is the
        // smaller endpoint, so ownership filters on it alone and a skipped
        // run loses no pair another shard would also count.
        if (!owned(neighbors[i])) continue;
        const std::uint64_t hi_key = static_cast<std::uint64_t>(neighbors[i]) << 32;
        auto& table = tables[shards == 1 ? 0 : shard_of(neighbors[i], shards)];
        // One capacity check per run, not per pair; with the load ensured,
        // the inner loop is hash + probe only, with the slot line fetched
        // kPrefetchDistance keys ahead.
        table.ensure(neighbors.size() - i - 1);
        for (std::size_t j = i + 1; j < neighbors.size(); ++j) {
          if (j + kPrefetchDistance < neighbors.size()) {
            table.prefetch(hi_key | neighbors[j + kPrefetchDistance]);
          }
          table.increment_unchecked(hi_key | neighbors[j]);
        }
      }
    }
  };

  // Pass 2: merge one shard index across all workers, then filter and emit.
  // Each worker owns a contiguous shard range and its own output vector, so
  // the merge pass is as lock-free as the count pass.
  static obs::Counter& merge_keys_counter = obs::metrics().counter("graph.projection.merge_keys");
  std::vector<std::vector<WeightedEdge>> shard_edges(shards);
  const auto emit_shards = [&](std::size_t lo, std::size_t hi, std::size_t) {
    OBS_SPAN("graph.projection.emit");
    for (std::size_t s = lo; s < hi; ++s) {
      // Size-aware merge: steal the LARGEST worker table as the base so the
      // per-key reinsert cost is the sum of the SMALLER tables only, and
      // reserve the worst-case union up front so the base rehashes at most
      // once. (Starting blindly from worker 0 meant re-inserting nearly
      // every key whenever a later worker held the dominant table, plus one
      // rehash per doubling as the merge grew it.)
      std::size_t base = 0;
      std::size_t total = 0;
      for (std::size_t w = 0; w < local.size(); ++w) {
        total += local[w][s].size();
        if (local[w][s].size() > local[base][s].size()) base = w;
      }
      util::FlatCounter merged = std::move(local[base][s]);
      merged.reserve(total);
      std::size_t reinserted = 0;
      for (std::size_t w = 0; w < local.size(); ++w) {
        if (w == base) continue;
        reinserted += local[w][s].size();
        merged.merge_from(std::move(local[w][s]));
      }
      merge_keys_counter.add(reinserted);
      auto& edges = shard_edges[s];
      edges.reserve(merged.size());
      merged.for_each([&](std::uint64_t key, std::uint32_t inter) {
        const auto u = static_cast<VertexId>(key >> 32);
        const auto v = static_cast<VertexId>(key & 0xFFFFFFFFu);
        const double similarity =
            set_similarity(options.measure, inter, side_degree(u), side_degree(v));
        if (similarity >= options.min_similarity && similarity > 0.0) {
          edges.push_back({u, v, similarity});
        }
      });
    }
  };

  if (threads == 1) {
    count_range(0, pivot_count, 0);
    emit_shards(0, shards, 0);
  } else {
    util::ThreadPool pool{threads};
    pool.parallel_for(0, pivot_count, count_range);
    pool.parallel_for(0, shards, emit_shards);
  }

  OBS_SPAN("graph.projection.sort");
  std::size_t total = 0;
  for (const auto& edges : shard_edges) total += edges.size();
  std::vector<WeightedEdge> all;
  all.reserve(total);
  for (auto& edges : shard_edges) all.insert(all.end(), edges.begin(), edges.end());
  std::sort(all.begin(), all.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  for (const auto& e : all) out.add_edge_unchecked(e.u, e.v, e.weight);
  edges_counter.add(all.size());
  return out;
}

/// Baseline: one global node-based map, pivots scanned in order.
template <typename NameFn, typename DegreeFn, typename PivotNeighborsFn>
WeightedGraph project_reference_impl(std::size_t side_count, NameFn&& side_name,
                                     DegreeFn&& side_degree, std::size_t pivot_count,
                                     PivotNeighborsFn&& pivot_neighbors,
                                     const ProjectionOptions& options) {
  WeightedGraph out;
  for (VertexId v = 0; v < side_count; ++v) out.add_vertex(side_name(v));

  const auto owner = pair_shard_owners(side_count, side_name, options);
  std::unordered_map<std::uint64_t, std::uint32_t> intersections;
  for (VertexId pivot = 0; pivot < pivot_count; ++pivot) {
    const auto neighbors = pivot_neighbors(pivot);
    if (options.max_pivot_degree != 0 && neighbors.size() > options.max_pivot_degree) continue;
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      if (!owner.empty() && owner[neighbors[i]] != options.pair_shard_index) continue;
      const std::uint64_t hi = static_cast<std::uint64_t>(neighbors[i]) << 32;
      for (std::size_t j = i + 1; j < neighbors.size(); ++j) {
        ++intersections[hi | neighbors[j]];
      }
    }
  }

  for (const auto& [key, inter] : intersections) {
    const auto u = static_cast<VertexId>(key >> 32);
    const auto v = static_cast<VertexId>(key & 0xFFFFFFFFu);
    const double similarity =
        set_similarity(options.measure, inter, side_degree(u), side_degree(v));
    if (similarity >= options.min_similarity && similarity > 0.0) {
      out.add_edge_unchecked(u, v, similarity);
    }
  }
  return out;
}

}  // namespace

WeightedGraph project_right(const BipartiteGraph& g, const ProjectionOptions& options) {
  if (options.mode == ProjectionMode::kSketched) {
    if (options.pair_shard_count > 1) {
      throw std::invalid_argument{"projection: pair shards require exact mode"};
    }
    return project_sketched(g, /*right_side=*/true, options);
  }
  return project_impl(
      g.right_count(), [&g](VertexId v) -> const std::string& { return g.right_names().name(v); },
      [&g](VertexId v) { return g.right_degree(v); }, g.left_count(),
      [&g](VertexId p) { return g.left_neighbors(p); }, options);
}

WeightedGraph project_left(const BipartiteGraph& g, const ProjectionOptions& options) {
  if (options.mode == ProjectionMode::kSketched) {
    if (options.pair_shard_count > 1) {
      throw std::invalid_argument{"projection: pair shards require exact mode"};
    }
    return project_sketched(g, /*right_side=*/false, options);
  }
  return project_impl(
      g.left_count(), [&g](VertexId v) -> const std::string& { return g.left_names().name(v); },
      [&g](VertexId v) { return g.left_degree(v); }, g.right_count(),
      [&g](VertexId p) { return g.right_neighbors(p); }, options);
}

WeightedGraph project_right_reference(const BipartiteGraph& g, const ProjectionOptions& options) {
  return project_reference_impl(
      g.right_count(), [&g](VertexId v) -> const std::string& { return g.right_names().name(v); },
      [&g](VertexId v) { return g.right_degree(v); }, g.left_count(),
      [&g](VertexId p) { return g.left_neighbors(p); }, options);
}

}  // namespace dnsembed::graph
