#include "graph/projection.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>

namespace dnsembed::graph {

namespace {

double set_similarity(SimilarityMeasure measure, std::size_t inter, std::size_t deg_u,
                      std::size_t deg_v) noexcept {
  switch (measure) {
    case SimilarityMeasure::kJaccard:
      return static_cast<double>(inter) / static_cast<double>(deg_u + deg_v - inter);
    case SimilarityMeasure::kCosine:
      return static_cast<double>(inter) /
             std::sqrt(static_cast<double>(deg_u) * static_cast<double>(deg_v));
    case SimilarityMeasure::kOverlap:
      return static_cast<double>(inter) / static_cast<double>(std::min(deg_u, deg_v));
  }
  return 0.0;
}

/// Shared implementation: `side_count`/`side_name`/`side_degree` describe
/// the projection side; `pivot_count`/`pivot_neighbors` the opposite side.
template <typename NameFn, typename DegreeFn, typename PivotNeighborsFn>
WeightedGraph project_impl(std::size_t side_count, NameFn&& side_name, DegreeFn&& side_degree,
                           std::size_t pivot_count, PivotNeighborsFn&& pivot_neighbors,
                           const ProjectionOptions& options) {
  WeightedGraph out;
  for (VertexId v = 0; v < side_count; ++v) out.add_vertex(side_name(v));

  // Pair key packs (u, v) with u < v into 64 bits.
  std::unordered_map<std::uint64_t, std::uint32_t> intersections;
  for (VertexId pivot = 0; pivot < pivot_count; ++pivot) {
    const auto neighbors = pivot_neighbors(pivot);
    if (options.max_pivot_degree != 0 && neighbors.size() > options.max_pivot_degree) continue;
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const std::uint64_t hi = static_cast<std::uint64_t>(neighbors[i]) << 32;
      for (std::size_t j = i + 1; j < neighbors.size(); ++j) {
        ++intersections[hi | neighbors[j]];
      }
    }
  }

  for (const auto& [key, inter] : intersections) {
    const auto u = static_cast<VertexId>(key >> 32);
    const auto v = static_cast<VertexId>(key & 0xFFFFFFFFu);
    const double similarity =
        set_similarity(options.measure, inter, side_degree(u), side_degree(v));
    if (similarity >= options.min_similarity && similarity > 0.0) {
      out.add_edge_unchecked(u, v, similarity);
    }
  }
  return out;
}

}  // namespace

WeightedGraph project_right(const BipartiteGraph& g, const ProjectionOptions& options) {
  return project_impl(
      g.right_count(), [&g](VertexId v) -> const std::string& { return g.right_names().name(v); },
      [&g](VertexId v) { return g.right_degree(v); }, g.left_count(),
      [&g](VertexId p) { return g.left_neighbors(p); }, options);
}

WeightedGraph project_left(const BipartiteGraph& g, const ProjectionOptions& options) {
  return project_impl(
      g.left_count(), [&g](VertexId v) -> const std::string& { return g.left_names().name(v); },
      [&g](VertexId v) { return g.left_degree(v); }, g.right_count(),
      [&g](VertexId p) { return g.right_neighbors(p); }, options);
}

}  // namespace dnsembed::graph
