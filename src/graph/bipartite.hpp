// Bipartite graph between two named vertex sets, e.g. hosts x domains
// (HDBG), domains x IPs (DIBG), domains x minute-buckets (DTBG).
//
// Build phase: add_edge() accumulates (duplicates allowed — a host may query
// the same domain many times). finalize() deduplicates and sorts adjacency;
// queries require a finalized graph.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/interner.hpp"

namespace dnsembed::graph {

using VertexId = util::StringInterner::Id;

class BipartiteGraph {
 public:
  /// Record one left-right interaction (idempotent after finalize()).
  void add_edge(std::string_view left, std::string_view right);

  /// Deduplicate and sort adjacency lists. Idempotent; called automatically
  /// by accessors via assertion in debug, but callers should finalize once
  /// after the build loop.
  void finalize();
  bool finalized() const noexcept { return finalized_; }

  std::size_t left_count() const noexcept { return left_names_.size(); }
  std::size_t right_count() const noexcept { return right_names_.size(); }

  /// Number of distinct edges (finalized graphs only).
  std::size_t edge_count() const;

  /// Sorted distinct neighbors (finalized graphs only).
  std::span<const VertexId> left_neighbors(VertexId left) const;
  std::span<const VertexId> right_neighbors(VertexId right) const;

  std::size_t left_degree(VertexId left) const { return left_neighbors(left).size(); }
  std::size_t right_degree(VertexId right) const { return right_neighbors(right).size(); }

  const util::StringInterner& left_names() const noexcept { return left_names_; }
  const util::StringInterner& right_names() const noexcept { return right_names_; }

  /// A copy containing only the right vertices for which keep() is true
  /// (and the left vertices still touching them). Used for the paper's
  /// domain-pruning rules. The result is finalized.
  BipartiteGraph filter_right(const std::vector<bool>& keep) const;

 private:
  void ensure_finalized(const char* op) const;

  util::StringInterner left_names_;
  util::StringInterner right_names_;
  std::vector<std::vector<VertexId>> left_adj_;   // left id -> right ids
  std::vector<std::vector<VertexId>> right_adj_;  // right id -> left ids
  std::size_t edge_count_ = 0;
  bool finalized_ = false;
};

}  // namespace dnsembed::graph
