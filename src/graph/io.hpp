// Edge-list persistence for graphs (CSV): lets the CLI materialize the
// bipartite graphs and similarity graphs for inspection in other tools
// (gephi, networkx, spreadsheets) and round-trip them in tests.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/bipartite.hpp"
#include "graph/weighted_graph.hpp"

namespace dnsembed::graph {

/// "left,right" rows, one per distinct edge, with a header line.
void save_bipartite_csv(std::ostream& out, const BipartiteGraph& g);

/// Parse back; throws std::runtime_error on malformed rows. Result is
/// finalized.
BipartiteGraph load_bipartite_csv(std::istream& in);

/// "u,v,weight" rows plus isolated vertices as "name,," rows.
void save_weighted_csv(std::ostream& out, const WeightedGraph& g);

WeightedGraph load_weighted_csv(std::istream& in);

}  // namespace dnsembed::graph
