// Edge-list persistence for graphs (CSV): lets the CLI materialize the
// bipartite graphs and similarity graphs for inspection in other tools
// (gephi, networkx, spreadsheets) and round-trip them in tests.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/bipartite.hpp"
#include "graph/weighted_graph.hpp"
#include "util/csr.hpp"

namespace dnsembed::graph {

/// "left,right" rows, one per distinct edge, with a header line.
void save_bipartite_csv(std::ostream& out, const BipartiteGraph& g);

/// Parse back; throws std::runtime_error on malformed rows. Result is
/// finalized.
BipartiteGraph load_bipartite_csv(std::istream& in);

/// "u,v,weight" rows plus isolated vertices as "name,," rows.
void save_weighted_csv(std::ostream& out, const WeightedGraph& g);

WeightedGraph load_weighted_csv(std::istream& in);

// --- Durable artifact forms (crash-safe file persistence). The CSV
// stream forms above are the human/interop format (gephi, spreadsheets);
// the artifact forms below are the pipeline's durable intermediates:
// checksummed containers written atomically, with weights stored by bit
// pattern so a reloaded graph reproduces embeddings bit-identically.

/// Artifact payload for a weighted graph: vertex names in id order, then
/// edges as index pairs with IEEE-754 bit-pattern weights (exact
/// round-trip, unlike decimal CSV).
std::string weighted_payload(const WeightedGraph& g);
/// Inverse of weighted_payload; throws util::CorruptArtifact (with
/// `context` as the path) on any malformed row.
WeightedGraph parse_weighted_payload(std::string_view payload, const std::string& context);

/// Atomic, checksummed file forms. load_* throw util::CorruptArtifact on a
/// damaged container and util::fsio::IoError on unreadable paths.
void save_weighted_file(const std::string& path, const WeightedGraph& g);
WeightedGraph load_weighted_file(const std::string& path);

void save_bipartite_file(const std::string& path, const BipartiteGraph& g);
BipartiteGraph load_bipartite_file(const std::string& path);

// --- CSR arena forms (util/csr.hpp). Binary struct-of-arrays payloads
// with a memory-mapped zero-copy load path: the durable similarity-graph
// format at million-domain scale. Weights round-trip by bit pattern (raw
// f64 sections), so a reloaded graph reproduces embeddings bit-identically
// just like the text artifact form.

/// Convert to the CSR arena form. Edge order is preserved (LINE's edge
/// sampler addresses edges positionally).
util::CsrGraph to_csr(const WeightedGraph& g);

/// Materialize a mutable WeightedGraph from a CSR arena (CSV export and
/// other interop paths; the pipeline itself consumes CsrGraph directly).
WeightedGraph from_csr(const util::CsrGraph& g);

/// Atomic checksummed save / mmap zero-copy load of the CSR form.
void save_csr_file(const std::string& path, const WeightedGraph& g);
util::CsrGraph load_csr_file(const std::string& path);

}  // namespace dnsembed::graph
