#include "graph/bipartite.hpp"

#include <algorithm>
#include <stdexcept>

namespace dnsembed::graph {

void BipartiteGraph::add_edge(std::string_view left, std::string_view right) {
  finalized_ = false;
  const VertexId l = left_names_.intern(left);
  const VertexId r = right_names_.intern(right);
  if (l >= left_adj_.size()) left_adj_.resize(l + 1);
  if (r >= right_adj_.size()) right_adj_.resize(r + 1);
  left_adj_[l].push_back(r);
  right_adj_[r].push_back(l);
}

void BipartiteGraph::finalize() {
  if (finalized_) return;
  left_adj_.resize(left_names_.size());
  right_adj_.resize(right_names_.size());
  edge_count_ = 0;
  for (auto& adj : left_adj_) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    adj.shrink_to_fit();
    edge_count_ += adj.size();
  }
  for (auto& adj : right_adj_) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    adj.shrink_to_fit();
  }
  finalized_ = true;
}

void BipartiteGraph::ensure_finalized(const char* op) const {
  if (!finalized_) {
    throw std::logic_error{std::string{"BipartiteGraph: "} + op + " requires finalize()"};
  }
}

std::size_t BipartiteGraph::edge_count() const {
  ensure_finalized("edge_count");
  return edge_count_;
}

std::span<const VertexId> BipartiteGraph::left_neighbors(VertexId left) const {
  ensure_finalized("left_neighbors");
  if (left >= left_adj_.size()) throw std::out_of_range{"BipartiteGraph: bad left id"};
  return left_adj_[left];
}

std::span<const VertexId> BipartiteGraph::right_neighbors(VertexId right) const {
  ensure_finalized("right_neighbors");
  if (right >= right_adj_.size()) throw std::out_of_range{"BipartiteGraph: bad right id"};
  return right_adj_[right];
}

BipartiteGraph BipartiteGraph::filter_right(const std::vector<bool>& keep) const {
  ensure_finalized("filter_right");
  if (keep.size() != right_names_.size()) {
    throw std::invalid_argument{"BipartiteGraph::filter_right: keep mask size mismatch"};
  }
  BipartiteGraph out;
  for (VertexId r = 0; r < right_adj_.size(); ++r) {
    if (!keep[r]) continue;
    const auto& right_name = right_names_.name(r);
    for (const VertexId l : right_adj_[r]) {
      out.add_edge(left_names_.name(l), right_name);
    }
  }
  out.finalize();
  return out;
}

}  // namespace dnsembed::graph
