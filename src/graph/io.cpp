#include "graph/io.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/csv.hpp"

namespace dnsembed::graph {

void save_bipartite_csv(std::ostream& out, const BipartiteGraph& g) {
  util::CsvWriter csv{out};
  csv.write_row({"left", "right"});
  for (VertexId l = 0; l < g.left_count(); ++l) {
    const auto& left_name = g.left_names().name(l);
    for (const VertexId r : g.left_neighbors(l)) {
      csv.write_row({left_name, g.right_names().name(r)});
    }
  }
}

BipartiteGraph load_bipartite_csv(std::istream& in) {
  BipartiteGraph g;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = util::parse_csv_line(line);
    if (line_no == 1 && fields.size() == 2 && fields[0] == "left") continue;  // header
    if (fields.size() != 2 || fields[0].empty() || fields[1].empty()) {
      throw std::runtime_error{"bipartite CSV: bad line " + std::to_string(line_no)};
    }
    g.add_edge(fields[0], fields[1]);
  }
  g.finalize();
  return g;
}

void save_weighted_csv(std::ostream& out, const WeightedGraph& g) {
  util::CsvWriter csv{out};
  csv.write_row({"u", "v", "weight"});
  for (const auto& e : g.edges()) {
    csv.write_row({g.names().name(e.u), g.names().name(e.v), std::to_string(e.weight)});
  }
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (g.degree(v) == 0) csv.write_row({g.names().name(v), "", ""});
  }
}

WeightedGraph load_weighted_csv(std::istream& in) {
  WeightedGraph g;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = util::parse_csv_line(line);
    if (line_no == 1 && fields.size() == 3 && fields[0] == "u") continue;  // header
    if (fields.size() != 3 || fields[0].empty()) {
      throw std::runtime_error{"weighted CSV: bad line " + std::to_string(line_no)};
    }
    if (fields[1].empty()) {
      g.add_vertex(fields[0]);  // isolated vertex row
      continue;
    }
    double weight = 0.0;
    const auto& w = fields[2];
    const auto [ptr, ec] = std::from_chars(w.data(), w.data() + w.size(), weight);
    if (ec != std::errc{} || ptr != w.data() + w.size()) {
      throw std::runtime_error{"weighted CSV: bad weight at line " + std::to_string(line_no)};
    }
    g.add_edge(fields[0], fields[1], weight);
  }
  return g;
}

}  // namespace dnsembed::graph
