#include "graph/io.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/artifact.hpp"
#include "util/bithex.hpp"
#include "util/csv.hpp"

namespace dnsembed::graph {

void save_bipartite_csv(std::ostream& out, const BipartiteGraph& g) {
  util::CsvWriter csv{out};
  csv.write_row({"left", "right"});
  for (VertexId l = 0; l < g.left_count(); ++l) {
    const auto& left_name = g.left_names().name(l);
    for (const VertexId r : g.left_neighbors(l)) {
      csv.write_row({left_name, g.right_names().name(r)});
    }
  }
}

BipartiteGraph load_bipartite_csv(std::istream& in) {
  BipartiteGraph g;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = util::parse_csv_line(line);
    if (line_no == 1 && fields.size() == 2 && fields[0] == "left") continue;  // header
    if (fields.size() != 2 || fields[0].empty() || fields[1].empty()) {
      throw std::runtime_error{"bipartite CSV: bad line " + std::to_string(line_no)};
    }
    g.add_edge(fields[0], fields[1]);
  }
  g.finalize();
  return g;
}

void save_weighted_csv(std::ostream& out, const WeightedGraph& g) {
  util::CsvWriter csv{out};
  csv.write_row({"u", "v", "weight"});
  for (const auto& e : g.edges()) {
    csv.write_row({g.names().name(e.u), g.names().name(e.v), std::to_string(e.weight)});
  }
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (g.degree(v) == 0) csv.write_row({g.names().name(v), "", ""});
  }
}

WeightedGraph load_weighted_csv(std::istream& in) {
  WeightedGraph g;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = util::parse_csv_line(line);
    if (line_no == 1 && fields.size() == 3 && fields[0] == "u") continue;  // header
    if (fields.size() != 3 || fields[0].empty()) {
      throw std::runtime_error{"weighted CSV: bad line " + std::to_string(line_no)};
    }
    if (fields[1].empty()) {
      g.add_vertex(fields[0]);  // isolated vertex row
      continue;
    }
    double weight = 0.0;
    const auto& w = fields[2];
    const auto [ptr, ec] = std::from_chars(w.data(), w.data() + w.size(), weight);
    if (ec != std::errc{} || ptr != w.data() + w.size()) {
      throw std::runtime_error{"weighted CSV: bad weight at line " + std::to_string(line_no)};
    }
    g.add_edge(fields[0], fields[1], weight);
  }
  return g;
}

namespace {

constexpr std::string_view kWeightedKind = "weighted-graph";
constexpr std::string_view kBipartiteKind = "bipartite-graph";

[[noreturn]] void bad_payload(const std::string& context, std::string reason) {
  util::fsio::note_corrupt_detected();
  throw util::CorruptArtifact{context, std::move(reason)};
}

bool parse_size(std::string_view text, std::size_t& out) {
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

/// Pull the next '\n'-terminated line out of `payload` starting at `pos`.
bool next_line(std::string_view payload, std::size_t& pos, std::string_view& line) {
  if (pos >= payload.size()) return false;
  const auto nl = payload.find('\n', pos);
  if (nl == std::string_view::npos) {
    line = payload.substr(pos);
    pos = payload.size();
  } else {
    line = payload.substr(pos, nl - pos);
    pos = nl + 1;
  }
  return true;
}

}  // namespace

std::string weighted_payload(const WeightedGraph& g) {
  std::string out;
  out += "vertices " + std::to_string(g.vertex_count()) + "\n";
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    out += g.names().name(v);
    out += '\n';
  }
  out += "edges " + std::to_string(g.edge_count()) + "\n";
  for (const auto& e : g.edges()) {
    out += std::to_string(e.u) + " " + std::to_string(e.v) + " " +
           util::double_to_hex(e.weight) + "\n";
  }
  return out;
}

WeightedGraph parse_weighted_payload(std::string_view payload, const std::string& context) {
  std::size_t pos = 0;
  std::string_view line;
  if (!next_line(payload, pos, line) || line.substr(0, 9) != "vertices ") {
    bad_payload(context, "weighted payload: missing vertices header");
  }
  std::size_t vertex_count = 0;
  if (!parse_size(line.substr(9), vertex_count)) {
    bad_payload(context, "weighted payload: bad vertex count");
  }
  WeightedGraph g;
  for (std::size_t v = 0; v < vertex_count; ++v) {
    if (!next_line(payload, pos, line) || line.empty()) {
      bad_payload(context, "weighted payload: truncated vertex list");
    }
    g.add_vertex(line);
  }
  if (!next_line(payload, pos, line) || line.substr(0, 6) != "edges ") {
    bad_payload(context, "weighted payload: missing edges header");
  }
  std::size_t edge_count = 0;
  if (!parse_size(line.substr(6), edge_count)) {
    bad_payload(context, "weighted payload: bad edge count");
  }
  for (std::size_t i = 0; i < edge_count; ++i) {
    if (!next_line(payload, pos, line)) {
      bad_payload(context, "weighted payload: truncated edge list");
    }
    const auto sp1 = line.find(' ');
    const auto sp2 = sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    std::size_t u = 0;
    std::size_t v = 0;
    double weight = 0.0;
    if (sp2 == std::string_view::npos || !parse_size(line.substr(0, sp1), u) ||
        !parse_size(line.substr(sp1 + 1, sp2 - sp1 - 1), v) ||
        !util::hex_to_double(line.substr(sp2 + 1), weight) || u >= vertex_count ||
        v >= vertex_count || u == v || !(weight > 0.0)) {
      bad_payload(context, "weighted payload: bad edge at row " + std::to_string(i));
    }
    g.add_edge_unchecked(static_cast<VertexId>(u), static_cast<VertexId>(v), weight);
  }
  if (pos != payload.size()) {
    bad_payload(context, "weighted payload: trailing bytes after edge list");
  }
  return g;
}

void save_weighted_file(const std::string& path, const WeightedGraph& g) {
  util::save_artifact(path, kWeightedKind, weighted_payload(g));
}

WeightedGraph load_weighted_file(const std::string& path) {
  return parse_weighted_payload(util::load_artifact(path, kWeightedKind), path);
}

void save_bipartite_file(const std::string& path, const BipartiteGraph& g) {
  std::ostringstream payload;
  save_bipartite_csv(payload, g);
  util::save_artifact(path, kBipartiteKind, payload.str());
}

BipartiteGraph load_bipartite_file(const std::string& path) {
  std::istringstream payload{util::load_artifact(path, kBipartiteKind)};
  try {
    return load_bipartite_csv(payload);
  } catch (const std::runtime_error& e) {
    bad_payload(path, e.what());
  }
}

util::CsrGraph to_csr(const WeightedGraph& g) {
  std::vector<std::uint32_t> edge_u;
  std::vector<std::uint32_t> edge_v;
  std::vector<double> edge_w;
  edge_u.reserve(g.edge_count());
  edge_v.reserve(g.edge_count());
  edge_w.reserve(g.edge_count());
  for (const auto& e : g.edges()) {
    edge_u.push_back(e.u);
    edge_v.push_back(e.v);
    edge_w.push_back(e.weight);
  }
  return util::CsrGraph::build(g.vertex_count(), edge_u, edge_v, edge_w, g.names().names());
}

WeightedGraph from_csr(const util::CsrGraph& g) {
  WeightedGraph out;
  for (std::uint32_t v = 0; v < g.vertex_count(); ++v) {
    if (g.has_names()) {
      out.add_vertex(g.name(v));
    } else {
      out.add_vertex(std::to_string(v));
    }
  }
  const auto eu = g.edge_u();
  const auto ev = g.edge_v();
  const auto ew = g.edge_w();
  for (std::size_t i = 0; i < eu.size(); ++i) {
    out.add_edge_unchecked(eu[i], ev[i], ew[i]);
  }
  return out;
}

void save_csr_file(const std::string& path, const WeightedGraph& g) {
  to_csr(g).save_file(path);
}

util::CsrGraph load_csr_file(const std::string& path) {
  return util::CsrGraph::load_file(path);
}

}  // namespace dnsembed::graph
