#include "graph/weighted_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace dnsembed::graph {

VertexId WeightedGraph::add_vertex(std::string_view name) {
  const VertexId id = names_.intern(name);
  if (id >= adj_.size()) adj_.resize(id + 1);
  return id;
}

void WeightedGraph::add_edge(std::string_view u, std::string_view v, double weight) {
  // Sequence the interning explicitly: ids must be assigned in argument
  // order regardless of the compiler's evaluation order.
  const VertexId uid = add_vertex(u);
  const VertexId vid = add_vertex(v);
  add_edge(uid, vid, weight);
}

void WeightedGraph::add_edge(VertexId u, VertexId v, double weight) {
  if (u >= names_.size() || v >= names_.size()) {
    throw std::out_of_range{"WeightedGraph::add_edge: unknown vertex id"};
  }
  if (u == v) throw std::invalid_argument{"WeightedGraph::add_edge: self-loop"};
  if (weight <= 0.0) throw std::invalid_argument{"WeightedGraph::add_edge: non-positive weight"};
  if (has_edge(u, v)) throw std::invalid_argument{"WeightedGraph::add_edge: parallel edge"};
  add_edge_unchecked(u, v, weight);
}

void WeightedGraph::add_edge_unchecked(VertexId u, VertexId v, double weight) {
  if (u >= names_.size() || v >= names_.size()) {
    throw std::out_of_range{"WeightedGraph::add_edge: unknown vertex id"};
  }
  if (u == v) throw std::invalid_argument{"WeightedGraph::add_edge: self-loop"};
  if (weight <= 0.0) throw std::invalid_argument{"WeightedGraph::add_edge: non-positive weight"};
  adj_[u].push_back(Neighbor{v, weight});
  adj_[v].push_back(Neighbor{u, weight});
  edges_.push_back(WeightedEdge{u, v, weight});
  total_weight_ += weight;
}

std::span<const Neighbor> WeightedGraph::neighbors(VertexId v) const {
  if (v >= adj_.size()) throw std::out_of_range{"WeightedGraph::neighbors: bad id"};
  return adj_[v];
}

double WeightedGraph::weighted_degree(VertexId v) const {
  double sum = 0.0;
  for (const Neighbor& n : neighbors(v)) sum += n.weight;
  return sum;
}

bool WeightedGraph::has_edge(VertexId u, VertexId v) const {
  if (u >= adj_.size() || v >= adj_.size()) return false;
  const auto& a = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const VertexId other = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::any_of(a.begin(), a.end(),
                     [other](const Neighbor& n) { return n.id == other; });
}

}  // namespace dnsembed::graph
