// Sketched one-mode projection: minhash signatures, b-bit LSH banding, and
// exact verification of candidate pairs — the sublinear route to the
// domain-similarity graphs at million-domain scale.
//
// Exact projection costs O(sum over pivots of deg²); this backend instead:
//
//   1. Signatures. Every projection-side vertex d gets a minhash signature
//      sig[d][j] = min over pivots n in N(d) of h_j(n), for k = signature_size
//      independent counter-based hash functions h_j (util::mix64 of
//      (seed, j, n) — no stored permutations). The per-pivot hash rows are
//      precomputed once, and the min-fold runs through the SIMD u32-min
//      kernel, one call per bipartite incidence. P[sig_u[j] == sig_v[j]]
//      equals the Jaccard similarity of N(u), N(v).
//   2. b-bit compression. Only the low `bits` bits of each entry are kept
//      (b-bit minwise hashing): the stored sketch is signature_size bytes
//      per vertex, and equal-entry probability becomes J + (1-J)/2^bits —
//      extra collisions are random and die in verification.
//   3. Banding. The compressed signature is cut into `bands` bands of
//      rows = signature_size / bands entries; vertices agreeing on any
//      whole band become a candidate pair (found by sorting (band-key,
//      vertex) entries, so candidate generation never materializes the
//      non-candidate pair space).
//   4. Verification. Each distinct candidate pair gets its EXACT
//      intersection computed from the sorted bipartite adjacency, so every
//      emitted weight is exact — sketching only decides which pairs are
//      looked at. min_similarity and max_pivot_degree match the exact
//      backend's semantics (hub pivots are excluded from both signatures
//      and intersections).
//   5. Optional top-k pruning keeps the k strongest verified neighbors per
//      vertex (union rule), bounding the output degree.
//
// Determinism: signatures are a pure function of (seed, graph); every
// parallel phase writes disjoint preallocated slots and candidate
// enumeration happens on sorted arrays, so the output is bit-identical for
// every thread count — same contract as the exact engine.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bipartite.hpp"
#include "graph/projection.hpp"
#include "graph/weighted_graph.hpp"

namespace dnsembed::graph {

/// The b-bit compressed minhash signatures of the projection side
/// (right_side ? right : left vertices): row-major side_count x
/// signature_size bytes. Vertices with no (eligible) pivots get all-0xFF
/// rows. Exposed for the determinism and parity tests; project_sketched
/// uses it internally.
std::vector<std::uint8_t> minhash_signatures(const BipartiteGraph& g, bool right_side,
                                             const ProjectionOptions& options);

/// Sketched projection onto the chosen side. Same output contract as
/// project_right/project_left: every side vertex present, edges sorted by
/// (u, v), weights exact for the pairs emitted, deterministic across
/// thread counts. Called by project_right/project_left when
/// options.mode == ProjectionMode::kSketched.
WeightedGraph project_sketched(const BipartiteGraph& g, bool right_side,
                               const ProjectionOptions& options);

}  // namespace dnsembed::graph
