// Undirected weighted graph over named vertices — the output type of the
// one-mode projections (domain similarity graphs) and the input type of the
// graph embedders (LINE / DeepWalk / node2vec).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/interner.hpp"

namespace dnsembed::graph {

using VertexId = util::StringInterner::Id;

struct WeightedEdge {
  VertexId u = 0;
  VertexId v = 0;
  double weight = 0.0;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

struct Neighbor {
  VertexId id = 0;
  double weight = 0.0;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

class WeightedGraph {
 public:
  /// Intern a vertex without edges (isolated vertices are legal: a domain
  /// may have no similar peer yet still needs an embedding slot).
  VertexId add_vertex(std::string_view name);

  /// Add one undirected edge with weight > 0. Parallel edges and self-loops
  /// are rejected (the projection never produces them; catching them here
  /// protects the embedders' sampling distributions).
  void add_edge(std::string_view u, std::string_view v, double weight);
  void add_edge(VertexId u, VertexId v, double weight);

  /// add_edge without the parallel-edge scan, for builders that already
  /// guarantee uniqueness (the projection emits each pair exactly once).
  /// Self-loops and non-positive weights are still rejected.
  void add_edge_unchecked(VertexId u, VertexId v, double weight);

  std::size_t vertex_count() const noexcept { return names_.size(); }
  std::size_t edge_count() const noexcept { return edges_.size(); }

  const util::StringInterner& names() const noexcept { return names_; }

  std::span<const WeightedEdge> edges() const noexcept { return edges_; }
  std::span<const Neighbor> neighbors(VertexId v) const;

  std::size_t degree(VertexId v) const { return neighbors(v).size(); }

  /// Sum of incident edge weights (used for LINE's negative-sampling noise
  /// distribution and for vertex importance).
  double weighted_degree(VertexId v) const;

  bool has_edge(VertexId u, VertexId v) const;

  /// Total edge weight.
  double total_weight() const noexcept { return total_weight_; }

 private:
  util::StringInterner names_;
  std::vector<std::vector<Neighbor>> adj_;
  std::vector<WeightedEdge> edges_;
  double total_weight_ = 0.0;
};

}  // namespace dnsembed::graph
