// Structural statistics over weighted graphs: degree distribution,
// connected components, density. Used by graph pruning decisions, the
// ablation benches, and experiment reporting.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/bipartite.hpp"
#include "graph/weighted_graph.hpp"

namespace dnsembed::graph {

struct GraphSummary {
  std::size_t vertices = 0;
  std::size_t edges = 0;
  std::size_t isolated_vertices = 0;
  std::size_t components = 0;       // of non-isolated vertices plus isolated ones
  std::size_t largest_component = 0;
  double mean_degree = 0.0;
  double max_degree = 0.0;
  double mean_edge_weight = 0.0;
};

GraphSummary summarize(const WeightedGraph& g);

/// component_of[v] for every vertex (isolated vertices get their own
/// component). Components are numbered 0..k-1 in discovery order.
std::vector<std::size_t> connected_components(const WeightedGraph& g);

/// The paper's pruning rules over a host/IP/minute x domain bipartite graph
/// (domains on the right): keep a domain iff
///   min_left_degree <= degree(domain) <= max_left_fraction * left_count.
/// Rule 1 (drop >50% of hosts) and rule 2 (drop single-host domains) are the
/// defaults; rule 3 (e2LD aggregation) happens upstream at log ingestion.
struct DegreePruneOptions {
  std::size_t min_left_degree = 2;
  double max_left_fraction = 0.5;
};

std::vector<bool> right_degree_keep_mask(const BipartiteGraph& g,
                                         const DegreePruneOptions& options = {});

}  // namespace dnsembed::graph
