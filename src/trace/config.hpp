// Configuration of the synthetic campus-network DNS trace (the substitution
// for the paper's proprietary capture; see DESIGN.md §2). Defaults are sized
// so the full experiment suite runs in minutes; every knob scales up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace dnsembed::trace {

struct TraceConfig {
  std::uint64_t seed = 42;

  /// Seed for malware-campaign *infrastructure* (family domains, IP pools,
  /// TTL regimes, ports). Defaults to 0 = derive from `seed`. Two campuses
  /// simulated with different `seed`s but the same `campaign_seed` are hit
  /// by the same campaigns (same domains and server IPs, different local
  /// victims) — the cross-network correlation setting of the paper's
  /// future-work section.
  std::uint64_t campaign_seed = 0;

  // ------------------------------------------------------------- campus
  /// Number of end-host devices (desktops/laptops/phones/IoT).
  std::size_t hosts = 400;
  /// Simulated duration in days.
  std::size_t days = 7;
  /// Epoch offset (seconds) of the first day.
  std::int64_t start_time = 0;
  /// Mean DHCP lease lifetime in hours (devices occasionally change IP).
  double dhcp_lease_hours = 24.0;

  // --------------------------------------------------------- benign web
  /// Distinct popular benign site e2LDs; per-site subdomains are generated.
  std::size_t benign_sites = 2500;
  /// Zipf exponent of site popularity.
  double zipf_exponent = 0.95;
  /// Pool of third-party e2LDs (ads/CDN/analytics) embedded in pages.
  std::size_t third_party_pool = 300;
  /// Mean third-party domains fetched per page view (temporal co-occurrence).
  double embedded_per_page = 4.0;
  /// Per-host interest-profile size: how many sites a host ever visits.
  std::size_t interests_per_host = 150;
  /// Mean browsing sessions per host per active day.
  double sessions_per_day = 5.0;
  /// Mean page views per session.
  double pages_per_session = 6.0;
  /// Fraction of sites served through a CDN (CNAME chain + shared CDN IPs).
  double cdn_fraction = 0.25;
  /// Fraction of sites on shared web hosting (IP shared with other sites).
  double shared_hosting_fraction = 0.3;
  /// Fraction of benign sites with brandable / non-English names (low
  /// dictionary overlap, digits) — defeats lexical features.
  double brandable_site_fraction = 0.3;
  /// Fraction of benign sites with internationalized names (punycode
  /// "xn--" ACE labels) — meaningless to undecoded lexical features.
  double idn_site_fraction = 0.03;
  /// Fraction of benign sites that are ephemeral (event/campaign pages
  /// active on a single day) — defeats "short life" features.
  double ephemeral_site_fraction = 0.2;
  /// Fraction of benign sites that are expired/parked: still queried via
  /// stale links and bookmarks but answering NXDOMAIN. Without them,
  /// "never resolves" would be a perfect malicious indicator (it is not,
  /// in real traces).
  double expired_site_fraction = 0.07;
  /// Benign apps with fixed polling periods (mail/IM/weather). Their
  /// regular beacons make the temporal channel noisy, as in real traffic.
  std::size_t polling_apps = 25;
  /// Mean polling period in minutes.
  double polling_period_minutes = 20.0;
  /// Probability a browsing query is a typo resulting in NXDOMAIN.
  double typo_rate = 0.01;

  // ---------------------------------------------------------- malicious
  /// Number of malware families / campaigns (kinds are assigned
  /// round-robin: DGA C&C, spam, phishing, fast-flux, static C&C).
  std::size_t malware_families = 10;
  /// Victim cohort size range per family.
  std::size_t min_victims = 6;
  std::size_t max_victims = 40;
  /// DGA families: algorithmically generated domains per day.
  std::size_t dga_domains_per_day = 30;
  /// Fraction of a day's DGA domains actually registered (rest NXDOMAIN).
  double dga_active_fraction = 0.5;
  /// Spam/phishing families: campaign domain count.
  std::size_t spam_domains_per_family = 45;
  /// Beacon period range (minutes) for C&C check-ins.
  double min_beacon_minutes = 10.0;
  double max_beacon_minutes = 45.0;
  /// Fast-flux: size of the rotating IP pool per family.
  std::size_t fastflux_pool_size = 60;
  /// Fraction of malicious domains using *high* TTLs (the paper observes
  /// malicious TTLs trending up, defeating Exposure's TTL features).
  double malicious_high_ttl_fraction = 0.5;
  /// Probability that a spam/phishing family serves (partly) from the
  /// benign shared-hosting pool — compromised websites. Blurs the
  /// IP-resolving channel, as in real traffic.
  double compromised_hosting_fraction = 0.35;
  /// Per-host-per-day probability of a stray click on a spam/phishing
  /// campaign by a NON-victim host (spam reaches everyone); dilutes the
  /// victim-cohort purity the query channel relies on.
  double stray_click_rate = 0.02;
  /// Day on which every malware family switches its TTL regime (the
  /// paper's §8.2 observation: attackers changed TTL tactics over time,
  /// breaking Exposure's TTL features). SIZE_MAX disables the shift.
  std::size_t tactic_shift_day = SIZE_MAX;

  // -------------------------------------------------- adversarial scenarios
  // All knobs default to OFF so baseline traces stay byte-identical; the
  // adversarial families are generated IN ADDITION to `malware_families`.
  /// Zero-day campaigns: families that emit NOTHING before their activation
  /// day, then beacon like a static C&C. Their domains have no query
  /// history; the prior signal is serving-IP reuse from earlier families.
  std::size_t zero_day_families = 0;
  /// First day (0-based) on which zero-day families emit traffic.
  /// SIZE_MAX = mid-window (days / 2).
  std::size_t zero_day_activation_day = SIZE_MAX;
  /// Fraction of each zero-day family's serving IPs drawn from earlier
  /// malicious families' pools (the rest are freshly allocated).
  double zero_day_ip_reuse_fraction = 0.75;
  /// Graph-evasion campaigns: spam-style families whose victims wrap each
  /// malicious contact in queries to popular benign cover sites.
  std::size_t evasion_families = 0;
  /// Probability that a single malicious contact is wrapped in benign
  /// cover queries (0 = plain campaign, 1 = every contact covered).
  double evasion_mimicry_rate = 0.5;
  /// Benign cover sites each evasion family blends into.
  std::size_t evasion_cover_sites = 12;
  /// Fraction of hosts that are IoT/embedded devices: no browsing, a
  /// handful of vendor endpoints queried in tight periodic bursts —
  /// narrow, bursty query distributions that stress the behavior model.
  double iot_host_fraction = 0.0;
  /// Vendor/cloud endpoints per IoT device class.
  std::size_t iot_vendor_domains = 3;
  /// Mean hours between IoT query bursts.
  double iot_burst_period_hours = 6.0;

  // ------------------------------------------------------------- output
  /// Also emit netflow records for malicious contacts and a sample of
  /// benign flows (for the §7.2.2 traffic-pattern analysis).
  bool emit_netflow = true;
  /// Sampling rate for benign netflow (malicious flows are always kept).
  double benign_flow_sample = 0.02;
};

}  // namespace dnsembed::trace
