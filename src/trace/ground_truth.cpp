#include "trace/ground_truth.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/artifact.hpp"

namespace dnsembed::trace {

std::string_view family_kind_name(FamilyKind kind) noexcept {
  switch (kind) {
    case FamilyKind::kDgaCnc: return "dga-cnc";
    case FamilyKind::kSpam: return "spam";
    case FamilyKind::kPhishing: return "phishing";
    case FamilyKind::kFastFlux: return "fast-flux";
    case FamilyKind::kStaticCnc: return "static-cnc";
    case FamilyKind::kApt: return "apt";
    case FamilyKind::kZeroDay: return "zero-day";
    case FamilyKind::kEvasion: return "evasion";
  }
  return "unknown";
}

void GroundTruth::add_benign(std::string domain) {
  if (known_.contains(domain)) return;
  known_.emplace(domain, false);
  benign_.push_back(std::move(domain));
}

void GroundTruth::add_family(MalwareFamily family) {
  for (const auto& domain : family.domains) {
    if (known_.contains(domain)) {
      throw std::invalid_argument{"GroundTruth: domain registered twice: " + domain};
    }
    known_.emplace(domain, true);
    malicious_index_.emplace(domain, family.id);
  }
  families_.push_back(std::move(family));
}

bool GroundTruth::is_malicious(std::string_view domain) const {
  return malicious_index_.contains(std::string{domain});
}

bool GroundTruth::is_known(std::string_view domain) const {
  return known_.contains(std::string{domain});
}

std::optional<std::size_t> GroundTruth::family_of(std::string_view domain) const {
  const auto it = malicious_index_.find(std::string{domain});
  if (it == malicious_index_.end()) return std::nullopt;
  return it->second;
}

std::string_view GroundTruth::scenario_of(std::string_view domain) const {
  const auto it = malicious_index_.find(std::string{domain});
  if (it != malicious_index_.end()) {
    for (const auto& family : families_) {
      if (family.id == it->second) return family_kind_name(family.kind);
    }
    return "unknown";
  }
  const auto known = known_.find(std::string{domain});
  if (known != known_.end()) return "benign";
  return {};
}

std::vector<std::string> GroundTruth::malicious_domains() const {
  std::vector<std::string> out;
  out.reserve(malicious_index_.size());
  for (const auto& family : families_) {
    for (const auto& domain : family.domains) out.push_back(domain);
  }
  return out;
}

namespace {

[[noreturn]] void bad_truth(const std::string& what) {
  throw std::runtime_error{"GroundTruth load: " + what};
}

void expect_header(std::istream& in, const char* keyword, std::size_t& count) {
  std::string word;
  if (!(in >> word >> count) || word != keyword) {
    bad_truth(std::string{"missing '"} + keyword + "' section");
  }
}

std::string read_token(std::istream& in, const char* what) {
  std::string token;
  if (!(in >> token)) bad_truth(std::string{"truncated "} + what);
  return token;
}

}  // namespace

void save_ground_truth(std::ostream& out, const GroundTruth& truth) {
  out << "dnsembed-truth 1\n";
  out << "benign " << truth.benign_domains().size() << '\n';
  for (const auto& domain : truth.benign_domains()) out << domain << '\n';
  out << "families " << truth.families().size() << '\n';
  for (const auto& family : truth.families()) {
    out << "family " << family.id << ' ' << static_cast<int>(family.kind) << ' ' << family.port
        << ' ' << family.name << '\n';
    out << "domains " << family.domains.size() << '\n';
    for (const auto& domain : family.domains) out << domain << '\n';
    out << "ips " << family.ips.size() << '\n';
    for (const auto ip : family.ips) out << ip.value() << '\n';
    out << "victims " << family.victims.size() << '\n';
    for (const auto& victim : family.victims) out << victim << '\n';
  }
}

GroundTruth load_ground_truth(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "dnsembed-truth" || version != 1) {
    bad_truth("bad header");
  }
  GroundTruth truth;
  std::size_t benign_count = 0;
  expect_header(in, "benign", benign_count);
  for (std::size_t i = 0; i < benign_count; ++i) {
    truth.add_benign(read_token(in, "benign list"));
  }
  std::size_t family_count = 0;
  expect_header(in, "families", family_count);
  for (std::size_t f = 0; f < family_count; ++f) {
    MalwareFamily family;
    std::string word;
    int kind = 0;
    if (!(in >> word >> family.id >> kind >> family.port) || word != "family" || kind < 0 ||
        kind > static_cast<int>(FamilyKind::kEvasion)) {
      bad_truth("bad family record " + std::to_string(f));
    }
    family.kind = static_cast<FamilyKind>(kind);
    family.name = read_token(in, "family name");
    std::size_t count = 0;
    expect_header(in, "domains", count);
    for (std::size_t i = 0; i < count; ++i) {
      family.domains.push_back(read_token(in, "family domains"));
    }
    expect_header(in, "ips", count);
    for (std::size_t i = 0; i < count; ++i) {
      std::uint32_t value = 0;
      if (!(in >> value)) bad_truth("truncated family ips");
      family.ips.emplace_back(value);
    }
    expect_header(in, "victims", count);
    for (std::size_t i = 0; i < count; ++i) {
      family.victims.push_back(read_token(in, "family victims"));
    }
    truth.add_family(std::move(family));
  }
  return truth;
}

void save_ground_truth_file(const std::string& path, const GroundTruth& truth) {
  std::ostringstream payload;
  save_ground_truth(payload, truth);
  util::save_artifact(path, "ground-truth", payload.str());
}

GroundTruth load_ground_truth_file(const std::string& path) {
  std::istringstream payload{util::load_artifact(path, "ground-truth")};
  try {
    return load_ground_truth(payload);
  } catch (const std::exception& e) {  // add_family rejects duplicates with logic_error
    util::fsio::note_corrupt_detected();
    throw util::CorruptArtifact{path, e.what()};
  }
}

}  // namespace dnsembed::trace
