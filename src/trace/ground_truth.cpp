#include "trace/ground_truth.hpp"

#include <stdexcept>

namespace dnsembed::trace {

std::string_view family_kind_name(FamilyKind kind) noexcept {
  switch (kind) {
    case FamilyKind::kDgaCnc: return "dga-cnc";
    case FamilyKind::kSpam: return "spam";
    case FamilyKind::kPhishing: return "phishing";
    case FamilyKind::kFastFlux: return "fast-flux";
    case FamilyKind::kStaticCnc: return "static-cnc";
    case FamilyKind::kApt: return "apt";
  }
  return "unknown";
}

void GroundTruth::add_benign(std::string domain) {
  if (known_.contains(domain)) return;
  known_.emplace(domain, false);
  benign_.push_back(std::move(domain));
}

void GroundTruth::add_family(MalwareFamily family) {
  for (const auto& domain : family.domains) {
    if (known_.contains(domain)) {
      throw std::invalid_argument{"GroundTruth: domain registered twice: " + domain};
    }
    known_.emplace(domain, true);
    malicious_index_.emplace(domain, family.id);
  }
  families_.push_back(std::move(family));
}

bool GroundTruth::is_malicious(std::string_view domain) const {
  return malicious_index_.contains(std::string{domain});
}

bool GroundTruth::is_known(std::string_view domain) const {
  return known_.contains(std::string{domain});
}

std::optional<std::size_t> GroundTruth::family_of(std::string_view domain) const {
  const auto it = malicious_index_.find(std::string{domain});
  if (it == malicious_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> GroundTruth::malicious_domains() const {
  std::vector<std::string> out;
  out.reserve(malicious_index_.size());
  for (const auto& family : families_) {
    for (const auto& domain : family.domains) out.push_back(domain);
  }
  return out;
}

}  // namespace dnsembed::trace
