// Streaming pcap output: a TraceSink that packetizes every DNS event as it
// is generated and appends it to a pcap stream, building its DHCP table
// from the lease events the generator emits up front. Memory stays O(1) in
// the trace length.
#pragma once

#include <iosfwd>

#include "dns/capture_io.hpp"
#include "trace/sink.hpp"

namespace dnsembed::trace {

class PcapStreamSink final : public TraceSink {
 public:
  explicit PcapStreamSink(std::ostream& out, dns::CaptureExportOptions options = {})
      : writer_{out, options} {}

  void on_dhcp(const dns::DhcpLease& lease) override { dhcp_.add_lease(lease); }

  void on_dns(const dns::LogEntry& entry) override { writer_.write(entry, dhcp_); }

  std::size_t packets_written() const noexcept { return writer_.packets_written(); }

 private:
  dns::DhcpTable dhcp_;
  dns::EntryPacketWriter writer_;
};

}  // namespace dnsembed::trace
