// The campus DNS trace generator: emits a joined DNS query/response event
// stream (plus netflow) for a simulated population of hosts browsing benign
// sites, running benign polling apps, and — for the compromised subset —
// talking to malware infrastructure (DGA fluxing, spam/phishing campaigns,
// fast-flux hosting, static C&C).
//
// The generator is deterministic for a fixed TraceConfig::seed. Events are
// emitted grouped by day (and within a day by host, then by family); they
// are NOT globally time-sorted — consumers aggregate by timestamp.
#pragma once

#include "dns/dhcp.hpp"
#include "trace/config.hpp"
#include "trace/ground_truth.hpp"
#include "trace/sink.hpp"

namespace dnsembed::trace {

/// Metadata produced alongside the event stream.
struct TraceResult {
  GroundTruth truth;
  dns::DhcpTable dhcp;       // lease history backing the device ids
  std::size_t dns_events = 0;
  std::size_t flow_events = 0;
  std::size_t nxdomain_events = 0;
};

/// Run the simulation, pushing every event into `sink`.
TraceResult generate_trace(const TraceConfig& config, TraceSink& sink);

}  // namespace dnsembed::trace
