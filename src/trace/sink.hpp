// Event sinks for the trace generator. Consumers (graph builders, counters,
// log writers) subscribe to the event stream instead of materializing the
// whole trace, so memory stays bounded by the aggregates, not the trace.
#pragma once

#include <cstdint>
#include <vector>

#include "dns/dhcp.hpp"
#include "dns/log_record.hpp"

namespace dnsembed::trace {

/// One (sampled) flow record from the campus edge, for §7.2.2.
struct NetflowRecord {
  std::int64_t timestamp = 0;
  std::string host;      // device id
  dns::Ipv4 dst_ip{};
  std::uint16_t dst_port = 0;
  std::uint32_t bytes = 0;

  friend bool operator==(const NetflowRecord&, const NetflowRecord&) = default;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// One joined DNS query/response event.
  virtual void on_dns(const dns::LogEntry& entry) = 0;

  /// One flow record (only when TraceConfig::emit_netflow).
  virtual void on_flow(const NetflowRecord& /*record*/) {}

  /// One DHCP lease. All leases are emitted BEFORE any DNS/flow event, so
  /// sinks that need device-to-IP mapping (e.g. packetizers) can build
  /// their own table up front.
  virtual void on_dhcp(const dns::DhcpLease& /*lease*/) {}
};

/// Collects everything into vectors (tests and small runs).
class CollectingSink final : public TraceSink {
 public:
  void on_dns(const dns::LogEntry& entry) override { dns_.push_back(entry); }
  void on_flow(const NetflowRecord& record) override { flows_.push_back(record); }
  void on_dhcp(const dns::DhcpLease& lease) override { leases_.push_back(lease); }

  const std::vector<dns::LogEntry>& dns() const noexcept { return dns_; }
  const std::vector<NetflowRecord>& flows() const noexcept { return flows_; }
  const std::vector<dns::DhcpLease>& leases() const noexcept { return leases_; }

  std::vector<dns::LogEntry>& mutable_dns() noexcept { return dns_; }

 private:
  std::vector<dns::LogEntry> dns_;
  std::vector<NetflowRecord> flows_;
  std::vector<dns::DhcpLease> leases_;
};

/// Fans one event stream out to several sinks.
class TeeSink final : public TraceSink {
 public:
  explicit TeeSink(std::vector<TraceSink*> sinks) : sinks_{std::move(sinks)} {}

  void on_dns(const dns::LogEntry& entry) override {
    for (auto* s : sinks_) s->on_dns(entry);
  }
  void on_flow(const NetflowRecord& record) override {
    for (auto* s : sinks_) s->on_flow(record);
  }
  void on_dhcp(const dns::DhcpLease& lease) override {
    for (auto* s : sinks_) s->on_dhcp(lease);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace dnsembed::trace
