// Name generators for the synthetic trace: plausible benign site names,
// third-party/CDN names, spam word-mash names (Table 1 style,
// "fattylivercur.bid"), and Conficker-style DGA names (Table 2 style,
// "oorfapjflmp.ws").
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace dnsembed::trace {

/// "word-word.tld" or "wordword.com"-style benign site e2LD.
std::string benign_site_name(util::Rng& rng);

/// Brandable / non-English benign e2LD: pinyin-like syllable strings or
/// short consonant brands, sometimes with digits ("taobao8.com",
/// "xqcdn.net"). These defeat dictionary-based lexical features (the paper
/// notes LMS fails for non-English domains).
std::string brandable_site_name(util::Rng& rng);

/// Ad/CDN/analytics e2LD ("cdn-word.net", "wordmetrics.com", ...).
std::string third_party_name(util::Rng& rng);

/// Internationalized benign e2LD: a few CJK code points in punycode ACE
/// form ("xn--....cn"). Lexical features must IDN-decode these or read
/// garbage (the paper's non-English-domain caveat).
std::string idn_site_name(util::Rng& rng);

/// Spam campaign e2LD: concatenated (sometimes vowel-dropped) words on a
/// cheap TLD, e.g. "bstwoodprofit.bid".
std::string spam_name(util::Rng& rng, const std::string& tld = "bid");

/// DGA e2LD: `length` uniformly random lowercase letters on `tld`, seeded
/// per (family, day) like real domain-fluxing malware.
std::string dga_name(std::uint64_t family_seed, std::uint64_t day, std::size_t index,
                     std::size_t length = 11, const std::string& tld = "ws");

/// Simple one-character typo of a name's second-level label.
std::string typo_of(const std::string& name, util::Rng& rng);

}  // namespace dnsembed::trace
