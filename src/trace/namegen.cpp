#include "trace/namegen.hpp"

#include <array>

#include "dns/punycode.hpp"
#include "util/wordlist.hpp"

namespace dnsembed::trace {

namespace {

std::string pick_word(util::Rng& rng) {
  const auto& words = util::word_list();
  return words[rng.uniform_index(words.size())];
}

std::string drop_random_vowel(std::string word, util::Rng& rng) {
  std::vector<std::size_t> vowels;
  for (std::size_t i = 0; i < word.size(); ++i) {
    const char c = word[i];
    if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') vowels.push_back(i);
  }
  if (!vowels.empty() && word.size() > 3) {
    word.erase(vowels[rng.uniform_index(vowels.size())], 1);
  }
  return word;
}

}  // namespace

std::string benign_site_name(util::Rng& rng) {
  static const std::array<std::string, 8> tlds{"com",   "net", "org",    "io",
                                               "co.uk", "de",  "com.cn", "edu"};
  const std::string& tld = tlds[rng.uniform_index(tlds.size())];
  std::string name = pick_word(rng);
  const double style = rng.uniform();
  if (style < 0.45) {
    name += pick_word(rng);
  } else if (style < 0.6) {
    name += "-" + pick_word(rng);
  } else if (style < 0.7) {
    name += std::to_string(rng.uniform_index(100));
  }
  return name + "." + tld;
}

std::string brandable_site_name(util::Rng& rng) {
  static const std::array<std::string, 18> syllables{"tao", "bao", "wei", "bo",  "xin", "hua",
                                                     "qi",  "niu", "sou", "hu",  "you", "ku",
                                                     "dou", "yin", "mei", "tuan", "jing", "dong"};
  std::string name;
  const double style = rng.uniform();
  if (style < 0.55) {
    // Pinyin-like: 2-4 syllables.
    const std::size_t n = 2 + rng.uniform_index(3);
    for (std::size_t i = 0; i < n; ++i) name += syllables[rng.uniform_index(syllables.size())];
  } else {
    // Short consonant-heavy brand: 3-6 random letters.
    const std::size_t n = 3 + rng.uniform_index(4);
    for (std::size_t i = 0; i < n; ++i) name += static_cast<char>('a' + rng.uniform_index(26));
  }
  if (rng.bernoulli(0.3)) name += std::to_string(rng.uniform_index(1000));
  static const std::array<std::string, 5> tlds{"com", "com.cn", "cn", "net", "cc"};
  return name + "." + tlds[rng.uniform_index(tlds.size())];
}

std::string idn_site_name(util::Rng& rng) {
  // 2-4 common CJK code points, punycode-encoded.
  std::vector<std::uint32_t> points;
  const std::size_t n = 2 + rng.uniform_index(3);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(0x4E00 + static_cast<std::uint32_t>(rng.uniform_index(0x9FA5 - 0x4E00)));
  }
  const auto ace = dns::punycode_encode(points);
  static const std::array<std::string, 3> tlds{"cn", "com.cn", "com"};
  return "xn--" + *ace + "." + tlds[rng.uniform_index(tlds.size())];
}

std::string third_party_name(util::Rng& rng) {
  static const std::array<std::string, 6> prefixes{"cdn",   "ads",   "track",
                                                   "stats", "pixel", "api"};
  static const std::array<std::string, 5> suffixes{"metrics", "serve", "edge", "cache",
                                                   "sync"};
  const double style = rng.uniform();
  std::string name;
  if (style < 0.5) {
    name = std::string{prefixes[rng.uniform_index(prefixes.size())]} + "-" + pick_word(rng);
  } else {
    name = pick_word(rng) + std::string{suffixes[rng.uniform_index(suffixes.size())]};
  }
  static const std::array<std::string, 4> tlds{"net", "com", "io", "cc"};
  return name + "." + tlds[rng.uniform_index(tlds.size())];
}

std::string spam_name(util::Rng& rng, const std::string& tld) {
  std::string a = pick_word(rng);
  std::string b = pick_word(rng);
  if (rng.bernoulli(0.5)) a = drop_random_vowel(std::move(a), rng);
  if (rng.bernoulli(0.3)) b = drop_random_vowel(std::move(b), rng);
  std::string name = a + b;
  if (rng.bernoulli(0.35)) name += pick_word(rng).substr(0, 3);
  return name + "." + tld;
}

std::string dga_name(std::uint64_t family_seed, std::uint64_t day, std::size_t index,
                     std::size_t length, const std::string& tld) {
  // Deterministic per (family, day, index): re-running the generator or an
  // analyst reimplementing the DGA yields the same names, as with real
  // domain-fluxing malware.
  util::Rng rng{family_seed * 1000003ULL + day * 8191ULL + index};
  std::string name;
  name.reserve(length + 1 + tld.size());
  for (std::size_t i = 0; i < length; ++i) {
    name += static_cast<char>('a' + rng.uniform_index(26));
  }
  return name + "." + tld;
}

std::string typo_of(const std::string& name, util::Rng& rng) {
  const std::size_t dot = name.find('.');
  std::string label = dot == std::string::npos ? name : name.substr(0, dot);
  const std::string rest = dot == std::string::npos ? "" : name.substr(dot);
  if (label.empty()) return name;
  const std::size_t pos = rng.uniform_index(label.size());
  label[pos] = static_cast<char>('a' + rng.uniform_index(26));
  return label + rest;
}

}  // namespace dnsembed::trace
