// Ground-truth registry produced alongside the synthetic trace: which e2LDs
// are malicious, which family/campaign owns them, and the infrastructure
// (IPs, ports, victims) behind each family. This substitutes for the
// paper's vendor blacklist + ThreatBook family reports.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/ipv4.hpp"

namespace dnsembed::trace {

enum class FamilyKind : std::uint8_t {
  kDgaCnc,     // domain-fluxing C&C (Conficker-style)
  kSpam,       // spam campaign cluster
  kPhishing,   // phishing site cluster
  kFastFlux,   // fast-flux hosted malware
  kStaticCnc,  // fixed-domain C&C
  kApt,        // low-and-slow APT C&C: statistically benign-looking
               // (long-lived wordlike .com domains, stable IPs, normal
               // TTLs, rare diurnal contacts) — only the victim-cohort
               // structure gives it away
  kZeroDay,    // zero-day campaign: completely silent until its activation
               // day, then beacons like a static C&C. Fresh domains with no
               // history; the one prior signal is that its serving IPs are
               // re-used from earlier families' low-reputation pools
               // (MANTIS-style infrastructure reuse).
  kEvasion,    // graph-evasion campaign: victim cohorts wrap C&C contacts
               // in queries to popular benign cover sites to poison the
               // similarity graphs with benign co-occurrence edges
               // (HinDom threat model; tunable mimicry rate).
};

std::string_view family_kind_name(FamilyKind kind) noexcept;

struct MalwareFamily {
  std::size_t id = 0;
  FamilyKind kind = FamilyKind::kDgaCnc;
  std::string name;                   // e.g. "family03-spam"
  std::vector<std::string> domains;   // e2LDs operated by the family
  std::vector<dns::Ipv4> ips;         // serving IP pool
  std::vector<std::string> victims;   // compromised device ids
  std::uint16_t port = 80;            // C&C / delivery port
};

class GroundTruth {
 public:
  /// Register a benign e2LD (site, third-party, app).
  void add_benign(std::string domain);

  /// Register a malicious family (domains become malicious labels).
  void add_family(MalwareFamily family);

  bool is_malicious(std::string_view domain) const;
  bool is_known(std::string_view domain) const;

  /// Family owning a malicious domain.
  std::optional<std::size_t> family_of(std::string_view domain) const;

  /// Scenario tag for a domain: the owning family's kind name for malicious
  /// domains ("dga-cnc", "zero-day", ...), "benign" for registered benign
  /// domains, "" for unknown domains. Tags are stable identifiers carried
  /// through labeled sets and the per-scenario report section.
  std::string_view scenario_of(std::string_view domain) const;

  const std::vector<MalwareFamily>& families() const noexcept { return families_; }
  const std::vector<std::string>& benign_domains() const noexcept { return benign_; }

  std::vector<std::string> malicious_domains() const;

  std::size_t benign_count() const noexcept { return benign_.size(); }
  std::size_t malicious_count() const noexcept { return malicious_index_.size(); }

 private:
  std::vector<std::string> benign_;
  std::vector<MalwareFamily> families_;
  std::unordered_map<std::string, std::size_t> malicious_index_;  // domain -> family id
  std::unordered_map<std::string, bool> known_;
};

/// Text serialization of the registry (benign list + families with their
/// infrastructure), preserving registration order exactly so a reloaded
/// truth drives labeling deterministically. load throws std::runtime_error
/// on malformed input.
void save_ground_truth(std::ostream& out, const GroundTruth& truth);
GroundTruth load_ground_truth(std::istream& in);

/// Durable artifact persistence (kind "ground-truth"): atomic, checksummed.
/// load_ground_truth_file throws util::CorruptArtifact on damage.
void save_ground_truth_file(const std::string& path, const GroundTruth& truth);
GroundTruth load_ground_truth_file(const std::string& path);

}  // namespace dnsembed::trace
