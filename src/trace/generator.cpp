#include "trace/generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "trace/namegen.hpp"
#include "util/zipf.hpp"

namespace dnsembed::trace {

namespace {

constexpr std::int64_t kDay = 86'400;
constexpr std::int64_t kMinute = 60;

/// Sequential IP allocator inside a /8-style region.
class IpAllocator {
 public:
  explicit IpAllocator(std::uint32_t base) : next_{base} {}
  dns::Ipv4 allocate() { return dns::Ipv4{next_++}; }

 private:
  std::uint32_t next_;
};

struct ThirdParty {
  std::string e2ld;
  std::string fqdn;  // served hostname
  std::vector<dns::Ipv4> ips;
  std::uint32_t ttl = 300;
  bool is_cdn = false;
};

struct Site {
  std::string e2ld;
  std::string fqdn;                 // primary hostname (www.<e2ld> or apex)
  std::vector<std::string> extra_hostnames;  // api./img./static./m. fan-out
  std::size_t active_from = 0;      // first day the site exists
  std::size_t active_to = SIZE_MAX; // last day (inclusive); ephemeral sites are short
  bool expired = false;             // parked/lapsed: every query is NXDOMAIN
  std::vector<dns::Ipv4> ips;       // serving addresses (CDN: the CDN's IPs)
  std::uint32_t ttl = 3600;
  std::size_t cdn = SIZE_MAX;       // index into third parties when fronted by a CDN
  std::vector<std::size_t> embedded;  // third-party indices fetched with the page
};

struct PollingApp {
  std::string e2ld;
  std::string fqdn;
  std::vector<dns::Ipv4> ips;
  std::uint32_t ttl = 60;
  double period_seconds = 1200;
  std::vector<std::size_t> subscribers;  // host indices
};

struct Host {
  std::string id;
  double activity = 1.0;                 // scales session count
  std::array<double, 24> diurnal{};      // hourly activity weights
  std::vector<std::size_t> interests;    // site indices this host visits
  bool iot = false;                      // IoT/embedded device profile
  std::size_t iot_class = 0;             // device class (camera, TV, ...)
};

struct FamilyRuntime {
  MalwareFamily info;
  double beacon_seconds = 1800;
  std::uint32_t ttl = 120;
  std::uint32_t ttl_shifted = 120;       // regime after TraceConfig::tactic_shift_day
  std::uint64_t dga_seed = 0;            // kDgaCnc only
  std::vector<std::size_t> victim_hosts; // indices into hosts
  std::size_t active_from_day = 0;       // kZeroDay: silent before this day
  std::vector<std::size_t> cover_sites;  // kEvasion: benign sites used as cover
};

class Generator {
 public:
  Generator(const TraceConfig& config, TraceSink& sink) : config_{config}, sink_{&sink} {}

  TraceResult run() {
    util::Rng rng{config_.seed};
    build_third_parties(rng);
    build_sites(rng);
    build_apps(rng);
    build_hosts(rng);
    build_iot();
    build_dhcp(rng);
    build_families(rng);

    for (std::size_t day = 0; day < config_.days; ++day) {
      for (std::size_t h = 0; h < hosts_.size(); ++h) {
        util::Rng day_rng{config_.seed ^ (0xB10C0000ULL + day * 131071ULL + h)};
        if (hosts_[h].iot) {
          emit_iot_day(day, h, day_rng);
          continue;
        }
        emit_browsing(day, h, day_rng);
        emit_polling(day, h, day_rng);
      }
      for (auto& family : families_) {
        util::Rng fam_rng{config_.seed ^ (0xFA110000ULL + day * 524287ULL + family.info.id)};
        emit_family_day(day, family, fam_rng);
      }
    }
    return std::move(result_);
  }

 private:
  // ------------------------------------------------------------ build-up

  void build_third_parties(util::Rng& rng) {
    IpAllocator cdn_ips{dns::Ipv4{151, 101, 0, 1}.value()};
    IpAllocator ad_ips{dns::Ipv4{142, 250, 0, 1}.value()};
    std::unordered_set<std::string> used;
    third_parties_.reserve(config_.third_party_pool);
    while (third_parties_.size() < config_.third_party_pool) {
      ThirdParty tp;
      tp.e2ld = third_party_name(rng);
      if (!used.insert(tp.e2ld).second) continue;
      tp.is_cdn = rng.bernoulli(0.2);
      tp.fqdn = (tp.is_cdn ? "edge." : "a.") + tp.e2ld;
      const std::size_t ip_count = tp.is_cdn ? 4 + rng.uniform_index(5) : 1 + rng.uniform_index(3);
      for (std::size_t i = 0; i < ip_count; ++i) {
        tp.ips.push_back((tp.is_cdn ? cdn_ips : ad_ips).allocate());
      }
      tp.ttl = tp.is_cdn ? static_cast<std::uint32_t>(20 + rng.uniform_index(280))
                         : static_cast<std::uint32_t>(300 + rng.uniform_index(3300));
      result_.truth.add_benign(tp.e2ld);
      third_parties_.push_back(std::move(tp));
    }
    for (std::size_t i = 0; i < third_parties_.size(); ++i) {
      if (third_parties_[i].is_cdn) cdn_indices_.push_back(i);
    }
    // Third-party popularity is itself Zipf (a few ad networks dominate).
    third_party_zipf_ = std::make_unique<util::ZipfSampler>(third_parties_.size(), 0.9);
  }

  void build_sites(util::Rng& rng) {
    IpAllocator dedicated{dns::Ipv4{23, 32, 0, 1}.value()};
    // Shared-hosting pool: many sites land on the same few dozen addresses.
    const std::size_t shared_pool_size = std::max<std::size_t>(8, config_.benign_sites / 50);
    IpAllocator shared{dns::Ipv4{192, 185, 0, 1}.value()};
    for (std::size_t i = 0; i < shared_pool_size; ++i) shared_pool_.push_back(shared.allocate());
    const auto& shared_pool = shared_pool_;
    shared_zipf_ = std::make_unique<util::ZipfSampler>(shared_pool.size(), 1.1);

    std::unordered_set<std::string> used;
    sites_.reserve(config_.benign_sites);
    while (sites_.size() < config_.benign_sites) {
      Site site;
      if (rng.bernoulli(config_.idn_site_fraction)) {
        site.e2ld = idn_site_name(rng);
      } else {
        site.e2ld = rng.bernoulli(config_.brandable_site_fraction) ? brandable_site_name(rng)
                                                                   : benign_site_name(rng);
      }
      if (!used.insert(site.e2ld).second) continue;
      if (rng.bernoulli(config_.ephemeral_site_fraction)) {
        // Event page: online for one or two days.
        site.active_from = rng.uniform_index(config_.days);
        site.active_to = site.active_from + rng.uniform_index(2);
      }
      site.expired = rng.bernoulli(config_.expired_site_fraction);
      site.fqdn = rng.bernoulli(0.7) ? "www." + site.e2ld : site.e2ld;
      // FQDN fan-out under the e2LD (Fig. 1b: unique FQDNs >> unique e2LDs).
      static constexpr std::array<const char*, 6> kSubs{"api", "img", "static", "m",
                                                        "cdn", "login"};
      const std::size_t subs = rng.uniform_index(5);
      for (std::size_t s = 0; s < subs; ++s) {
        site.extra_hostnames.push_back(std::string{kSubs[rng.uniform_index(kSubs.size())]} +
                                       "." + site.e2ld);
      }
      const double hosting = rng.uniform();
      if (!cdn_indices_.empty() && hosting < config_.cdn_fraction) {
        site.cdn = cdn_indices_[rng.uniform_index(cdn_indices_.size())];
        site.ips = third_parties_[site.cdn].ips;
        site.ttl = third_parties_[site.cdn].ttl;
      } else if (hosting < config_.cdn_fraction + config_.shared_hosting_fraction) {
        // Tenant counts on shared hosts are heavy-tailed: a few machines
        // host hundreds of sites, many host a handful.
        site.ips.push_back(shared_pool[shared_zipf_->sample(rng)]);
        site.ttl = static_cast<std::uint32_t>(1800 + rng.uniform_index(84600));
      } else {
        const std::size_t ip_count = 1 + rng.uniform_index(3);
        for (std::size_t i = 0; i < ip_count; ++i) site.ips.push_back(dedicated.allocate());
        site.ttl = static_cast<std::uint32_t>(600 + rng.uniform_index(85800));
      }
      // Embedded third parties: popular networks appear on many sites.
      const std::size_t embeds = 2 + rng.uniform_index(7);
      std::unordered_set<std::size_t> chosen;
      for (std::size_t i = 0; i < embeds; ++i) {
        chosen.insert(third_party_zipf_->sample(rng));
      }
      site.embedded.assign(chosen.begin(), chosen.end());
      result_.truth.add_benign(site.e2ld);
      sites_.push_back(std::move(site));
    }
    site_zipf_ = std::make_unique<util::ZipfSampler>(sites_.size(), config_.zipf_exponent);
  }

  void build_apps(util::Rng& rng) {
    IpAllocator app_ips{dns::Ipv4{104, 16, 0, 1}.value()};
    std::unordered_set<std::string> used;
    while (apps_.size() < config_.polling_apps) {
      PollingApp app;
      app.e2ld = third_party_name(rng);
      if (!used.insert(app.e2ld).second || result_.truth.is_known(app.e2ld)) continue;
      app.fqdn = "push." + app.e2ld;
      const std::size_t ip_count = 1 + rng.uniform_index(2);
      for (std::size_t i = 0; i < ip_count; ++i) app.ips.push_back(app_ips.allocate());
      app.ttl = static_cast<std::uint32_t>(30 + rng.uniform_index(270));
      // Jittered per-app period around the configured mean.
      app.period_seconds =
          std::max(120.0, config_.polling_period_minutes * 60.0 * rng.uniform(0.5, 1.5));
      result_.truth.add_benign(app.e2ld);
      apps_.push_back(std::move(app));
    }
  }

  void build_hosts(util::Rng& rng) {
    hosts_.resize(config_.hosts);
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
      Host& host = hosts_[h];
      host.id = "dev-" + std::to_string(1000 + h);
      host.activity = rng.uniform(0.4, 1.8);
      // Campus diurnal shape: quiet nights, peaks late morning and evening.
      for (std::size_t hour = 0; hour < 24; ++hour) {
        const double morning = std::exp(-0.5 * std::pow((static_cast<double>(hour) - 11) / 3.0, 2));
        const double evening = std::exp(-0.5 * std::pow((static_cast<double>(hour) - 20) / 2.5, 2));
        host.diurnal[hour] = 0.05 + morning + 0.8 * evening;
      }
      // Interest profile: Zipf-sampled sites; dedup keeps the popular head
      // shared across hosts (the audience overlap behind Eq. 1).
      std::unordered_set<std::size_t> interests;
      while (interests.size() < std::min(config_.interests_per_host, sites_.size())) {
        interests.insert(site_zipf_->sample(rng));
      }
      host.interests.assign(interests.begin(), interests.end());
      // App subscriptions.
      for (std::size_t a = 0; a < apps_.size(); ++a) {
        if (rng.bernoulli(0.12)) apps_[a].subscribers.push_back(h);
      }
    }
  }

  // IoT/embedded device profiles: the last `hosts * iot_host_fraction`
  // devices become IoT endpoints — no browsing, no app polling, just a
  // handful of per-class vendor endpoints queried in tight bursts. Uses a
  // derived RNG stream so the rest of the campus (leases, families, victim
  // cohorts) is byte-identical whether or not IoT profiles are enabled.
  void build_iot() {
    const auto iot_count = static_cast<std::size_t>(
        config_.iot_host_fraction * static_cast<double>(config_.hosts));
    if (iot_count == 0) return;
    util::Rng rng{config_.seed * 73 + 0x107B0057ULL};
    static constexpr std::array<const char*, 4> kClasses{"cam", "tv", "sensor", "plug"};
    IpAllocator vendor_ips{dns::Ipv4{52, 94, 0, 1}.value()};
    iot_class_endpoints_.resize(kClasses.size());
    std::unordered_set<std::string> used;
    for (std::size_t cls = 0; cls < kClasses.size(); ++cls) {
      while (iot_class_endpoints_[cls].size() < config_.iot_vendor_domains) {
        ThirdParty endpoint;
        endpoint.e2ld = third_party_name(rng);
        if (!used.insert(endpoint.e2ld).second || result_.truth.is_known(endpoint.e2ld)) continue;
        endpoint.fqdn = std::string{kClasses[cls]} + "-fw." + endpoint.e2ld;
        const std::size_t ip_count = 1 + rng.uniform_index(2);
        for (std::size_t i = 0; i < ip_count; ++i) endpoint.ips.push_back(vendor_ips.allocate());
        endpoint.ttl = static_cast<std::uint32_t>(60 + rng.uniform_index(540));
        result_.truth.add_benign(endpoint.e2ld);
        iot_endpoints_.push_back(std::move(endpoint));
        iot_class_endpoints_[cls].push_back(iot_endpoints_.size() - 1);
      }
    }
    for (std::size_t h = hosts_.size() - iot_count; h < hosts_.size(); ++h) {
      Host& host = hosts_[h];
      host.iot = true;
      host.iot_class = h % kClasses.size();
      // Embedded devices run around the clock: flat diurnal profile.
      host.diurnal.fill(1.0);
    }
    // IoT devices do not run user-facing polling apps.
    for (auto& app : apps_) {
      std::erase_if(app.subscribers, [&](std::size_t h) { return hosts_[h].iot; });
    }
  }

  void build_dhcp(util::Rng& rng) {
    IpAllocator campus{dns::Ipv4{10, 20, 0, 10}.value()};
    const auto horizon = static_cast<std::int64_t>(config_.days) * kDay;
    for (auto& host : hosts_) {
      // Each device walks through one or more leases on its own address
      // (campus-style per-device reassignment is modeled as lease renewal
      // times; a fresh IP is drawn per lease).
      std::int64_t t = config_.start_time;
      while (t < config_.start_time + horizon) {
        const auto lease_len = static_cast<std::int64_t>(
            std::max(3600.0, rng.exponential(1.0 / (config_.dhcp_lease_hours * 3600.0))));
        const std::int64_t end = std::min(t + lease_len, config_.start_time + horizon);
        dns::DhcpLease lease{host.id, campus.allocate(), t, end};
        sink_->on_dhcp(lease);
        result_.dhcp.add_lease(std::move(lease));
        t = end;
      }
    }
  }

  void build_families(util::Rng& campus_rng) {
    // Infrastructure (names, IPs, TTLs, ports, beacon cadence) comes from
    // the campaign seed so it can be shared across campuses; victim
    // cohorts come from the campus seed.
    util::Rng rng{config_.campaign_seed != 0 ? config_.campaign_seed : config_.seed * 31 + 7};
    IpAllocator mal_ips{dns::Ipv4{185, 220, 0, 1}.value()};
    constexpr std::array<FamilyKind, 6> kinds{FamilyKind::kDgaCnc,   FamilyKind::kSpam,
                                              FamilyKind::kPhishing, FamilyKind::kFastFlux,
                                              FamilyKind::kStaticCnc, FamilyKind::kApt};
    constexpr std::array<std::uint16_t, 4> cnc_ports{80, 1337, 2710, 8080};

    for (std::size_t f = 0; f < config_.malware_families; ++f) {
      FamilyRuntime family;
      family.info.id = f;
      family.info.kind = kinds[f % kinds.size()];
      family.info.name =
          "family" + std::to_string(f) + "-" + std::string{family_kind_name(family.info.kind)};
      family.beacon_seconds =
          rng.uniform(config_.min_beacon_minutes, config_.max_beacon_minutes) * 60.0;
      const bool high_ttl = rng.bernoulli(config_.malicious_high_ttl_fraction);
      family.ttl = high_ttl ? static_cast<std::uint32_t>(3600 + rng.uniform_index(82800))
                            : static_cast<std::uint32_t>(30 + rng.uniform_index(270));
      // Post-shift regime: the opposite tactic (paper §8.2: malicious TTL
      // behavior inverted over time).
      family.ttl_shifted = high_ttl ? static_cast<std::uint32_t>(30 + rng.uniform_index(270))
                                    : static_cast<std::uint32_t>(3600 + rng.uniform_index(82800));

      // Victim cohort: local to this campus.
      draw_victims(family, campus_rng);

      switch (family.info.kind) {
        case FamilyKind::kDgaCnc: {
          family.dga_seed = rng();
          family.info.port = cnc_ports[rng.uniform_index(cnc_ports.size())];
          const std::size_t pool = 3 + rng.uniform_index(4);
          for (std::size_t i = 0; i < pool; ++i) family.info.ips.push_back(mal_ips.allocate());
          // Domains are appended lazily per day in emit_family_day; register
          // the full horizon now so ground truth is complete up front.
          for (std::size_t day = 0; day < config_.days; ++day) {
            for (std::size_t i = 0; i < config_.dga_domains_per_day; ++i) {
              family.info.domains.push_back(dga_name(family.dga_seed, day, i));
            }
          }
          break;
        }
        case FamilyKind::kSpam:
        case FamilyKind::kPhishing: {
          family.info.port = family.info.kind == FamilyKind::kSpam
                                 ? cnc_ports[rng.uniform_index(cnc_ports.size())]
                                 : 443;
          // Compromised shared hosting: part of the campaign serves from
          // the same addresses as legitimate shared-hosted sites.
          if (rng.bernoulli(config_.compromised_hosting_fraction) && !shared_pool_.empty()) {
            family.info.ips.push_back(shared_pool_[rng.uniform_index(shared_pool_.size())]);
          }
          const std::size_t ip_count = 1 + rng.uniform_index(2);
          for (std::size_t i = 0; i < ip_count; ++i) family.info.ips.push_back(mal_ips.allocate());
          const std::size_t count =
              family.info.kind == FamilyKind::kSpam
                  ? config_.spam_domains_per_family
                  : std::max<std::size_t>(1, config_.spam_domains_per_family / 2);
          std::unordered_set<std::string> used;
          while (used.size() < count) {
            const std::string tld = family.info.kind == FamilyKind::kSpam ? "bid" : "top";
            std::string name = spam_name(rng, tld);
            if (result_.truth.is_known(name) || !used.insert(name).second) continue;
            family.info.domains.push_back(std::move(name));
          }
          break;
        }
        case FamilyKind::kFastFlux: {
          family.info.port = 80;
          for (std::size_t i = 0; i < config_.fastflux_pool_size; ++i) {
            family.info.ips.push_back(mal_ips.allocate());
          }
          family.ttl = static_cast<std::uint32_t>(30 + rng.uniform_index(90));  // always short
          family.ttl_shifted = static_cast<std::uint32_t>(120 + rng.uniform_index(480));
          const std::size_t count = 6 + rng.uniform_index(5);
          std::unordered_set<std::string> used;
          while (used.size() < count) {
            std::string name = spam_name(rng, "su");
            if (result_.truth.is_known(name) || !used.insert(name).second) continue;
            family.info.domains.push_back(std::move(name));
          }
          break;
        }
        case FamilyKind::kStaticCnc: {
          family.info.port = cnc_ports[1 + rng.uniform_index(cnc_ports.size() - 1)];
          const std::size_t ip_count = 1 + rng.uniform_index(3);
          for (std::size_t i = 0; i < ip_count; ++i) family.info.ips.push_back(mal_ips.allocate());
          const std::size_t count = 2 + rng.uniform_index(4);
          std::unordered_set<std::string> used;
          while (used.size() < count) {
            std::string name = spam_name(rng, "win");
            if (result_.truth.is_known(name) || !used.insert(name).second) continue;
            family.info.domains.push_back(std::move(name));
          }
          break;
        }
        case FamilyKind::kApt: {
          // Statistical mimicry: wordlike .com/.net names, a couple of
          // dedicated stable IPs, ordinary TTLs, HTTPS port. Every
          // Exposure feature group looks benign.
          family.info.port = 443;
          family.ttl = static_cast<std::uint32_t>(1800 + rng.uniform_index(84600));
          const std::size_t ip_count = 1 + rng.uniform_index(2);
          for (std::size_t i = 0; i < ip_count; ++i) family.info.ips.push_back(mal_ips.allocate());
          const std::size_t count = 8 + rng.uniform_index(8);
          std::unordered_set<std::string> used;
          while (used.size() < count) {
            std::string name = benign_site_name(rng);
            if (result_.truth.is_known(name) || !used.insert(name).second) continue;
            family.info.domains.push_back(std::move(name));
          }
          break;
        }
        case FamilyKind::kZeroDay:
        case FamilyKind::kEvasion:
          // Adversarial kinds are never in the baseline round-robin; they
          // are built in build_adversarial_families below.
          break;
      }
      result_.truth.add_family(family.info);
      families_.push_back(std::move(family));
    }
    build_adversarial_families(rng, campus_rng, mal_ips, cnc_ports);
  }

  /// Victim cohort drawn from the campus RNG (baseline and adversarial
  /// families share the draw pattern; `cohort_cap` clamps the size after the
  /// draw so the RNG sequence is unchanged whether or not a cap applies).
  void draw_victims(FamilyRuntime& family, util::Rng& campus_rng,
                    std::size_t cohort_cap = SIZE_MAX) {
    const std::size_t cohort = std::min(
        cohort_cap,
        config_.min_victims +
            campus_rng.uniform_index(
                std::max<std::size_t>(1, config_.max_victims - config_.min_victims)));
    std::unordered_set<std::size_t> victims;
    while (victims.size() < std::min(cohort, hosts_.size())) {
      victims.insert(campus_rng.uniform_index(hosts_.size()));
    }
    family.victim_hosts.assign(victims.begin(), victims.end());
    for (const std::size_t v : family.victim_hosts) {
      family.info.victims.push_back(hosts_[v].id);
    }
  }

  // Adversarial campaign archetypes, generated AFTER (and in addition to)
  // the baseline families so enabling them never perturbs baseline
  // infrastructure or victim cohorts for a given seed pair.
  void build_adversarial_families(util::Rng& rng, util::Rng& campus_rng, IpAllocator& mal_ips,
                                  const std::array<std::uint16_t, 4>& cnc_ports) {
    if (config_.zero_day_families == 0 && config_.evasion_families == 0) return;
    const std::size_t activation = config_.zero_day_activation_day == SIZE_MAX
                                       ? config_.days / 2
                                       : config_.zero_day_activation_day;
    // Low-reputation pool: every serving IP already burned by an earlier
    // family. Zero-day campaigns draw from it (MANTIS: infrastructure
    // reuse is the one pre-activation signal about fresh domains).
    std::vector<dns::Ipv4> low_rep_pool;
    for (const auto& prior : families_) {
      low_rep_pool.insert(low_rep_pool.end(), prior.info.ips.begin(), prior.info.ips.end());
    }
    // Adversarial cohorts stay at or below the >50%-of-hosts pruning head:
    // a campaign infecting most of a small campus would be pruned as
    // "popular", which makes the scenario vacuous rather than hard.
    const std::size_t cohort_cap = std::max<std::size_t>(2, hosts_.size() / 2);

    std::size_t next_id = config_.malware_families;
    for (std::size_t z = 0; z < config_.zero_day_families; ++z) {
      FamilyRuntime family;
      family.info.id = next_id++;
      family.info.kind = FamilyKind::kZeroDay;
      family.info.name = "family" + std::to_string(family.info.id) + "-zero-day";
      family.active_from_day = activation;
      family.beacon_seconds =
          rng.uniform(config_.min_beacon_minutes, config_.max_beacon_minutes) * 60.0;
      // Fresh campaign: no TTL history to shift; a single short-ish regime.
      family.ttl = static_cast<std::uint32_t>(60 + rng.uniform_index(600));
      family.ttl_shifted = family.ttl;
      family.info.port = cnc_ports[rng.uniform_index(cnc_ports.size())];
      draw_victims(family, campus_rng, cohort_cap);
      const std::size_t ip_count = 2 + rng.uniform_index(3);
      for (std::size_t i = 0; i < ip_count; ++i) {
        if (!low_rep_pool.empty() && rng.bernoulli(config_.zero_day_ip_reuse_fraction)) {
          family.info.ips.push_back(low_rep_pool[rng.uniform_index(low_rep_pool.size())]);
        } else {
          family.info.ips.push_back(mal_ips.allocate());
        }
      }
      const std::size_t count = 3 + rng.uniform_index(4);
      std::unordered_set<std::string> used;
      while (used.size() < count) {
        std::string name = spam_name(rng, "icu");
        if (result_.truth.is_known(name) || !used.insert(name).second) continue;
        family.info.domains.push_back(std::move(name));
      }
      // Later zero-day families may reuse this family's pool too.
      low_rep_pool.insert(low_rep_pool.end(), family.info.ips.begin(), family.info.ips.end());
      result_.truth.add_family(family.info);
      families_.push_back(std::move(family));
    }

    for (std::size_t e = 0; e < config_.evasion_families; ++e) {
      FamilyRuntime family;
      family.info.id = next_id++;
      family.info.kind = FamilyKind::kEvasion;
      family.info.name = "family" + std::to_string(family.info.id) + "-evasion";
      family.beacon_seconds =
          rng.uniform(config_.min_beacon_minutes, config_.max_beacon_minutes) * 60.0;
      // Mimicry extends to answer features: benign-looking TTLs, HTTPS.
      family.ttl = static_cast<std::uint32_t>(1800 + rng.uniform_index(84600));
      family.ttl_shifted = family.ttl;
      family.info.port = 443;
      draw_victims(family, campus_rng, cohort_cap);
      if (rng.bernoulli(config_.compromised_hosting_fraction) && !shared_pool_.empty()) {
        family.info.ips.push_back(shared_pool_[rng.uniform_index(shared_pool_.size())]);
      }
      const std::size_t ip_count = 1 + rng.uniform_index(2);
      for (std::size_t i = 0; i < ip_count; ++i) family.info.ips.push_back(mal_ips.allocate());
      const std::size_t count = std::max<std::size_t>(1, config_.spam_domains_per_family / 3);
      std::unordered_set<std::string> used;
      while (used.size() < count) {
        std::string name = benign_site_name(rng);
        if (result_.truth.is_known(name) || !used.insert(name).second) continue;
        family.info.domains.push_back(std::move(name));
      }
      // Cover sites: popular enough that their embeddings sit firmly in the
      // benign mass, but below the >50%-of-hosts head that pruning removes.
      // Always-on sites only, so cover is available on every day.
      const std::size_t lo = sites_.size() / 20;
      const std::size_t span = std::max<std::size_t>(1, sites_.size() / 3 - lo);
      std::unordered_set<std::size_t> cover;
      for (int attempt = 0; attempt < 4096 && cover.size() < config_.evasion_cover_sites;
           ++attempt) {
        const std::size_t idx = lo + rng.uniform_index(span);
        if (sites_[idx].expired || sites_[idx].active_to != SIZE_MAX) continue;
        cover.insert(idx);
      }
      family.cover_sites.assign(cover.begin(), cover.end());
      std::sort(family.cover_sites.begin(), family.cover_sites.end());
      result_.truth.add_family(family.info);
      families_.push_back(std::move(family));
    }
  }

  // ------------------------------------------------------------ emission

  void emit_dns(std::int64_t ts, const std::string& host, const std::string& fqdn,
                std::uint32_t ttl, const std::vector<dns::Ipv4>& addresses,
                std::vector<std::string> cnames = {},
                dns::RCode rcode = dns::RCode::kNoError) {
    dns::LogEntry entry;
    entry.timestamp = ts;
    entry.host = host;
    entry.qname = fqdn;
    entry.qtype = dns::QType::kA;
    entry.rcode = rcode;
    // Observed TTLs count down in resolver caches: passive DNS sees a
    // uniform remainder of the authoritative value, not the value itself.
    entry.ttl = rcode == dns::RCode::kNoError && ttl > 0
                    ? 1 + static_cast<std::uint32_t>(obs_rng_.uniform_index(ttl))
                    : 0;
    if (rcode == dns::RCode::kNoError) entry.addresses = addresses;
    entry.cnames = std::move(cnames);
    if (rcode == dns::RCode::kNxDomain) ++result_.nxdomain_events;
    ++result_.dns_events;
    sink_->on_dns(entry);
  }

  /// Family TTL in effect on `day` (regime shift per TraceConfig).
  std::uint32_t family_ttl(const FamilyRuntime& family, std::size_t day) const {
    return day >= config_.tactic_shift_day ? family.ttl_shifted : family.ttl;
  }

  /// Stable per-domain server assignment inside a family pool: each
  /// campaign wave serves its domains from specific machines, so answer
  /// features vary across a family instead of fingerprinting it.
  static dns::Ipv4 family_ip_for(const FamilyRuntime& family, const std::string& domain,
                                 util::Rng& rng) {
    std::uint64_t h = 14695981039346656037ULL;
    for (const char c : domain) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    const std::size_t base = h % family.info.ips.size();
    // Occasionally the secondary server answers.
    const std::size_t offset = rng.bernoulli(0.2) ? 1 : 0;
    return family.info.ips[(base + offset) % family.info.ips.size()];
  }

  void emit_flow(std::int64_t ts, const std::string& host, dns::Ipv4 ip, std::uint16_t port,
                 std::uint32_t bytes, bool malicious, util::Rng& rng) {
    if (!config_.emit_netflow) return;
    if (!malicious && !rng.bernoulli(config_.benign_flow_sample)) return;
    NetflowRecord record;
    record.timestamp = ts;
    record.host = host;
    record.dst_ip = ip;
    record.dst_port = port;
    record.bytes = bytes;
    ++result_.flow_events;
    sink_->on_flow(record);
  }

  /// Probability that the device is powered on / active at time t (scaled
  /// diurnal weight). Bots only beacon while their host runs.
  bool host_awake(const Host& host, std::int64_t t, util::Rng& rng) const {
    const auto hour = static_cast<std::size_t>((t % kDay) / 3600);
    double max_weight = 0.0;
    for (const double w : host.diurnal) max_weight = std::max(max_weight, w);
    return rng.uniform() * max_weight < host.diurnal[hour % 24];
  }

  /// A second-of-day drawn from the host's diurnal profile.
  std::int64_t diurnal_second(const Host& host, util::Rng& rng) const {
    double total = 0.0;
    for (const double w : host.diurnal) total += w;
    double u = rng.uniform() * total;
    std::size_t hour = 0;
    for (; hour < 24; ++hour) {
      u -= host.diurnal[hour];
      if (u <= 0.0) break;
    }
    hour = std::min<std::size_t>(hour, 23);
    return static_cast<std::int64_t>(hour) * 3600 + static_cast<std::int64_t>(rng.uniform_index(3600));
  }

  void emit_page_view(std::int64_t ts, const Host& host, const Site& site, util::Rng& rng) {
    // Occasional typo first: NXDOMAIN, then the corrected query.
    if (rng.bernoulli(config_.typo_rate)) {
      emit_dns(ts, host.id, typo_of(site.fqdn, rng), 0, {}, {}, dns::RCode::kNxDomain);
      ts += 1 + static_cast<std::int64_t>(rng.uniform_index(3));
    }
    if (site.expired) {
      // Stale link: the lookup fails and the user bounces — no assets, no
      // third-party fetches.
      emit_dns(ts, host.id, site.fqdn, 0, {}, {}, dns::RCode::kNxDomain);
      return;
    }
    std::vector<std::string> cnames;
    if (site.cdn != SIZE_MAX) cnames.push_back(third_parties_[site.cdn].fqdn);
    emit_dns(ts, host.id, site.fqdn, site.ttl, site.ips, std::move(cnames));
    // Page assets from sibling hostnames of the same e2LD.
    for (const auto& hostname : site.extra_hostnames) {
      if (!rng.bernoulli(0.5)) continue;
      emit_dns(ts + 1 + static_cast<std::int64_t>(rng.uniform_index(3)), host.id, hostname,
               site.ttl, site.ips);
    }
    if (!site.ips.empty()) {
      emit_flow(ts, host.id, site.ips[rng.uniform_index(site.ips.size())], 443,
                2000 + static_cast<std::uint32_t>(rng.uniform_index(60000)), false, rng);
    }
    // Embedded third-party fetches: within a few seconds (the temporal
    // co-occurrence the DTBG captures).
    for (const std::size_t tp_index : site.embedded) {
      if (!rng.bernoulli(std::min(1.0, config_.embedded_per_page /
                                           static_cast<double>(site.embedded.size())))) {
        continue;
      }
      const ThirdParty& tp = third_parties_[tp_index];
      emit_dns(ts + 1 + static_cast<std::int64_t>(rng.uniform_index(4)), host.id, tp.fqdn,
               tp.ttl, tp.ips);
    }
  }

  void emit_browsing(std::size_t day, std::size_t host_index, util::Rng& rng) {
    const Host& host = hosts_[host_index];
    const std::int64_t day_start = config_.start_time + static_cast<std::int64_t>(day) * kDay;
    const auto sessions = rng.poisson(config_.sessions_per_day * host.activity);
    for (std::uint64_t s = 0; s < sessions; ++s) {
      std::int64_t t = day_start + diurnal_second(host, rng);
      const auto pages = 1 + rng.poisson(config_.pages_per_session);
      for (std::uint64_t p = 0; p < pages; ++p) {
        // Re-draw (bounded) when the chosen site is not live on this day.
        const Site* site = nullptr;
        for (int attempt = 0; attempt < 8; ++attempt) {
          const Site& candidate =
              sites_[host.interests[rng.uniform_index(host.interests.size())]];
          if (day >= candidate.active_from && day <= candidate.active_to) {
            site = &candidate;
            break;
          }
        }
        if (site == nullptr) continue;
        emit_page_view(t, host, *site, rng);
        t += 10 + static_cast<std::int64_t>(rng.uniform_index(110));
      }
    }
  }

  void emit_polling(std::size_t day, std::size_t host_index, util::Rng& rng) {
    const Host& host = hosts_[host_index];
    const std::int64_t day_start = config_.start_time + static_cast<std::int64_t>(day) * kDay;
    for (const auto& app : apps_) {
      if (!std::binary_search(app.subscribers.begin(), app.subscribers.end(), host_index)) {
        continue;
      }
      // Fixed per-(host, app) phase; jittered period.
      std::int64_t t =
          day_start + static_cast<std::int64_t>(rng.uniform_index(
                          static_cast<std::uint64_t>(app.period_seconds)));
      while (t < day_start + kDay) {
        emit_dns(t, host.id, app.fqdn, app.ttl, app.ips);
        t += static_cast<std::int64_t>(app.period_seconds * rng.uniform(0.85, 1.15));
      }
    }
  }

  void emit_family_day(std::size_t day, FamilyRuntime& family, util::Rng& rng) {
    switch (family.info.kind) {
      case FamilyKind::kDgaCnc:
        emit_dga_day(day, family, rng);
        break;
      case FamilyKind::kSpam:
      case FamilyKind::kPhishing:
        emit_campaign_day(day, family, rng);
        break;
      case FamilyKind::kFastFlux:
        emit_fastflux_day(day, family, rng);
        break;
      case FamilyKind::kStaticCnc:
        emit_static_cnc_day(day, family, rng);
        break;
      case FamilyKind::kApt:
        emit_apt_day(day, family, rng);
        break;
      case FamilyKind::kZeroDay:
        // Completely silent (no DNS, no flows) until the activation day;
        // afterwards the campaign beacons like a static C&C.
        if (day >= family.active_from_day) emit_static_cnc_day(day, family, rng);
        break;
      case FamilyKind::kEvasion:
        emit_evasion_day(day, family, rng);
        break;
    }
  }

  void emit_evasion_day(std::size_t day, FamilyRuntime& family, util::Rng& rng) {
    // Like a spam/phishing campaign, but with probability
    // `evasion_mimicry_rate` each C&C contact is sandwiched between page
    // views of popular benign cover sites by the same victim, seconds
    // apart — poisoning the temporal co-occurrence graph (and, since every
    // victim uses the same cover set, correlating the cohort with benign
    // domains in the query graph).
    const std::int64_t day_start = config_.start_time + static_cast<std::int64_t>(day) * kDay;
    for (const std::size_t v : family.victim_hosts) {
      const Host& host = hosts_[v];
      const auto clicks = 1 + rng.poisson(2.0);
      for (std::uint64_t c = 0; c < clicks; ++c) {
        std::int64_t t = day_start + diurnal_second(host, rng);
        const bool covered =
            !family.cover_sites.empty() && rng.bernoulli(config_.evasion_mimicry_rate);
        if (covered) {
          const Site& cover =
              sites_[family.cover_sites[rng.uniform_index(family.cover_sites.size())]];
          emit_page_view(t, host, cover, rng);
          t += 2 + static_cast<std::int64_t>(rng.uniform_index(6));
        }
        const std::size_t chain = 1 + rng.uniform_index(2);
        for (std::size_t k = 0; k < chain; ++k) {
          const std::string& domain =
              family.info.domains[rng.uniform_index(family.info.domains.size())];
          const dns::Ipv4 ip = family_ip_for(family, domain, rng);
          emit_dns(t, host.id, domain, family_ttl(family, day), {ip});
          emit_flow(t + 1, host.id, ip, family.info.port,
                    500 + static_cast<std::uint32_t>(rng.uniform_index(5000)), true, rng);
          t += 2 + static_cast<std::int64_t>(rng.uniform_index(5));
        }
        if (covered) {
          const Site& cover =
              sites_[family.cover_sites[rng.uniform_index(family.cover_sites.size())]];
          emit_page_view(t + 1 + static_cast<std::int64_t>(rng.uniform_index(4)), host, cover,
                         rng);
        }
      }
    }
  }

  void emit_iot_day(std::size_t day, std::size_t host_index, util::Rng& rng) {
    // Embedded device: a narrow set of vendor endpoints, contacted in
    // tight bursts (firmware/telemetry check-ins) around the clock. No
    // browsing, no user apps — the behavioral model sees a query
    // distribution far narrower and burstier than any desktop.
    const Host& host = hosts_[host_index];
    if (iot_class_endpoints_.empty()) return;
    const auto& endpoints = iot_class_endpoints_[host.iot_class % iot_class_endpoints_.size()];
    if (endpoints.empty()) return;
    const std::int64_t day_start = config_.start_time + static_cast<std::int64_t>(day) * kDay;
    const double period = std::max(600.0, config_.iot_burst_period_hours * 3600.0);
    std::int64_t t = day_start + static_cast<std::int64_t>(
                                     rng.uniform_index(static_cast<std::uint64_t>(period)));
    while (t < day_start + kDay) {
      // One burst: a handful of rapid queries across the class endpoints.
      const std::size_t queries = 3 + rng.uniform_index(6);
      std::int64_t q = t;
      for (std::size_t i = 0; i < queries; ++i) {
        const ThirdParty& endpoint = iot_endpoints_[endpoints[rng.uniform_index(endpoints.size())]];
        emit_dns(q, host.id, endpoint.fqdn, endpoint.ttl, endpoint.ips);
        q += 1 + static_cast<std::int64_t>(rng.uniform_index(5));
      }
      const ThirdParty& flow_endpoint =
          iot_endpoints_[endpoints[rng.uniform_index(endpoints.size())]];
      if (!flow_endpoint.ips.empty()) {
        emit_flow(q, host.id, flow_endpoint.ips.front(), 443,
                  200 + static_cast<std::uint32_t>(rng.uniform_index(4000)), false, rng);
      }
      t += static_cast<std::int64_t>(period * rng.uniform(0.7, 1.3));
    }
  }

  void emit_apt_day(std::size_t day, FamilyRuntime& family, util::Rng& rng) {
    // Low-and-slow: a few contacts per victim per day, at human-looking
    // hours, to long-lived wordlike domains over HTTPS. Indistinguishable
    // from browsing for per-domain statistical features; the shared victim
    // cohort remains visible to the behavioral graphs.
    const std::int64_t day_start = config_.start_time + static_cast<std::int64_t>(day) * kDay;
    for (const std::size_t v : family.victim_hosts) {
      const Host& host = hosts_[v];
      const auto contacts = 1 + rng.poisson(1.5);
      for (std::uint64_t c = 0; c < contacts; ++c) {
        const std::int64_t t = day_start + diurnal_second(host, rng);
        const std::string& domain =
            family.info.domains[rng.uniform_index(family.info.domains.size())];
        const dns::Ipv4 ip = family_ip_for(family, domain, rng);
        emit_dns(t, host.id, domain, family_ttl(family, day), {ip});
        emit_flow(t + 1, host.id, ip, family.info.port,
                  1000 + static_cast<std::uint32_t>(rng.uniform_index(20000)), true, rng);
      }
    }
  }

  void emit_dga_day(std::size_t day, FamilyRuntime& family, util::Rng& rng) {
    // Today's candidate list; a deterministic prefix is "registered".
    std::vector<std::string> today;
    today.reserve(config_.dga_domains_per_day);
    for (std::size_t i = 0; i < config_.dga_domains_per_day; ++i) {
      today.push_back(dga_name(family.dga_seed, day, i));
    }
    const std::size_t active = std::max<std::size_t>(
        1, static_cast<std::size_t>(config_.dga_active_fraction *
                                    static_cast<double>(today.size())));
    const std::int64_t day_start = config_.start_time + static_cast<std::int64_t>(day) * kDay;

    for (const std::size_t v : family.victim_hosts) {
      const Host& host = hosts_[v];
      std::int64_t t = day_start + static_cast<std::int64_t>(
                                       rng.uniform_index(static_cast<std::uint64_t>(
                                           family.beacon_seconds)));
      while (t < day_start + kDay) {
        // Bots run only while the host is awake; missed beacons are skipped.
        if (!host_awake(host, t, rng)) {
          t += static_cast<std::int64_t>(family.beacon_seconds * rng.uniform(0.5, 1.5));
          continue;
        }
        // The bot walks the candidate list in a random order until it hits
        // a registered name: a few NXDOMAINs, spread over a few minutes
        // (real bots sleep between retries), then one resolution.
        const std::size_t tries = 1 + rng.uniform_index(3);
        std::int64_t probe = t;
        for (std::size_t k = 0; k < tries; ++k) {
          const std::size_t idx = active + rng.uniform_index(today.size() - active);
          emit_dns(probe, host.id, today[idx], 0, {}, {}, dns::RCode::kNxDomain);
          probe += 15 + static_cast<std::int64_t>(rng.uniform_index(165));
        }
        const std::size_t hit = rng.uniform_index(active);
        const dns::Ipv4 ip = family_ip_for(family, today[hit], rng);
        emit_dns(probe, host.id, today[hit], family_ttl(family, day), {ip});
        emit_flow(probe + 1, host.id, ip, family.info.port,
                  200 + static_cast<std::uint32_t>(rng.uniform_index(2000)), true, rng);
        t += static_cast<std::int64_t>(family.beacon_seconds * rng.uniform(0.5, 1.5));
      }
    }
  }

  void emit_campaign_day(std::size_t day, FamilyRuntime& family, util::Rng& rng) {
    // Victims click spam/phishing links during their active hours; a click
    // walks a short redirection chain across campaign domains.
    const std::int64_t day_start = config_.start_time + static_cast<std::int64_t>(day) * kDay;
    // Stray clicks: spam reaches the whole campus; an occasional non-victim
    // clicks one campaign link once.
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
      if (!rng.bernoulli(config_.stray_click_rate)) continue;
      const Host& host = hosts_[h];
      const std::int64_t t = day_start + diurnal_second(host, rng);
      const std::string& domain =
          family.info.domains[rng.uniform_index(family.info.domains.size())];
      const dns::Ipv4 ip = family_ip_for(family, domain, rng);
      emit_dns(t, host.id, domain, family_ttl(family, day), {ip});
    }
    for (const std::size_t v : family.victim_hosts) {
      const Host& host = hosts_[v];
      const auto clicks = rng.poisson(2.0);
      for (std::uint64_t c = 0; c < clicks; ++c) {
        std::int64_t t = day_start + diurnal_second(host, rng);
        const std::size_t chain = 1 + rng.uniform_index(3);
        for (std::size_t k = 0; k < chain; ++k) {
          const std::string& domain =
              family.info.domains[rng.uniform_index(family.info.domains.size())];
          const dns::Ipv4 ip = family_ip_for(family, domain, rng);
          emit_dns(t, host.id, domain, family_ttl(family, day), {ip});
          emit_flow(t + 1, host.id, ip, family.info.port,
                    500 + static_cast<std::uint32_t>(rng.uniform_index(5000)), true, rng);
          t += 2 + static_cast<std::int64_t>(rng.uniform_index(5));
        }
      }
    }
  }

  void emit_fastflux_day(std::size_t day, FamilyRuntime& family, util::Rng& rng) {
    const std::int64_t day_start = config_.start_time + static_cast<std::int64_t>(day) * kDay;
    for (const std::size_t v : family.victim_hosts) {
      const Host& host = hosts_[v];
      const auto contacts = 1 + rng.poisson(3.0);
      for (std::uint64_t c = 0; c < contacts; ++c) {
        const std::int64_t t = day_start + diurnal_second(host, rng);
        const std::string& domain =
            family.info.domains[rng.uniform_index(family.info.domains.size())];
        // Rotating flux set: the answer window advances every 5 minutes.
        const std::size_t window =
            static_cast<std::size_t>((t / (5 * kMinute))) % family.info.ips.size();
        std::vector<dns::Ipv4> answers;
        for (std::size_t k = 0; k < 4; ++k) {
          answers.push_back(family.info.ips[(window + k * 7) % family.info.ips.size()]);
        }
        // Fast-flux fronts commonly answer through a CNAME layer, like CDNs.
        emit_dns(t, host.id, domain, family_ttl(family, day), answers, {"edge." + domain});
        emit_flow(t + 1, host.id, answers.front(), family.info.port,
                  300 + static_cast<std::uint32_t>(rng.uniform_index(3000)), true, rng);
      }
    }
  }

  void emit_static_cnc_day(std::size_t day, FamilyRuntime& family, util::Rng& rng) {
    const std::int64_t day_start = config_.start_time + static_cast<std::int64_t>(day) * kDay;
    for (const std::size_t v : family.victim_hosts) {
      const Host& host = hosts_[v];
      std::int64_t t = day_start + static_cast<std::int64_t>(
                                       rng.uniform_index(static_cast<std::uint64_t>(
                                           family.beacon_seconds)));
      while (t < day_start + kDay) {
        if (!host_awake(host, t, rng)) {
          t += static_cast<std::int64_t>(family.beacon_seconds * rng.uniform(0.5, 1.5));
          continue;
        }
        const std::string& domain =
            family.info.domains[rng.uniform_index(family.info.domains.size())];
        const dns::Ipv4 ip = family_ip_for(family, domain, rng);
        emit_dns(t, host.id, domain, family_ttl(family, day), {ip});
        emit_flow(t + 1, host.id, ip, family.info.port,
                  100 + static_cast<std::uint32_t>(rng.uniform_index(400)), true, rng);
        t += static_cast<std::int64_t>(family.beacon_seconds * rng.uniform(0.7, 1.3));
      }
    }
  }

  const TraceConfig config_;
  TraceSink* sink_;
  TraceResult result_;
  util::Rng obs_rng_{0xCAC4EDECULL};  // resolver-cache observation noise

  std::vector<ThirdParty> third_parties_;
  std::vector<ThirdParty> iot_endpoints_;
  std::vector<std::vector<std::size_t>> iot_class_endpoints_;  // per device class
  std::vector<std::size_t> cdn_indices_;
  std::vector<Site> sites_;
  std::vector<PollingApp> apps_;
  std::vector<Host> hosts_;
  std::vector<dns::Ipv4> shared_pool_;
  std::vector<FamilyRuntime> families_;
  std::unique_ptr<util::ZipfSampler> site_zipf_;
  std::unique_ptr<util::ZipfSampler> third_party_zipf_;
  std::unique_ptr<util::ZipfSampler> shared_zipf_;
};

}  // namespace

TraceResult generate_trace(const TraceConfig& config, TraceSink& sink) {
  if (config.hosts == 0 || config.days == 0) {
    throw std::invalid_argument{"generate_trace: hosts and days must be positive"};
  }
  if (config.benign_sites == 0 || config.third_party_pool == 0) {
    throw std::invalid_argument{"generate_trace: benign pools must be non-empty"};
  }
  if (config.min_victims == 0 || config.max_victims == 0) {
    throw std::invalid_argument{
        "generate_trace: victim cohort range is zero-sized (min_victims and "
        "max_victims must both be >= 1)"};
  }
  if (config.min_victims > config.max_victims || config.max_victims > config.hosts) {
    throw std::invalid_argument{
        "generate_trace: bad victim cohort bounds (need min_victims <= max_victims <= hosts)"};
  }
  if (config.spam_domains_per_family == 0) {
    throw std::invalid_argument{
        "generate_trace: spam_domains_per_family must be >= 1 (spam/phishing "
        "families would own no domains)"};
  }
  if (config.zero_day_families > 0 && config.zero_day_activation_day != SIZE_MAX &&
      config.zero_day_activation_day >= config.days) {
    throw std::invalid_argument{
        "generate_trace: zero_day_activation_day is beyond the simulated window "
        "(the campaign would never activate)"};
  }
  if (config.zero_day_ip_reuse_fraction < 0.0 || config.zero_day_ip_reuse_fraction > 1.0) {
    throw std::invalid_argument{
        "generate_trace: zero_day_ip_reuse_fraction must be within [0, 1]"};
  }
  if (config.evasion_mimicry_rate < 0.0 || config.evasion_mimicry_rate > 1.0) {
    throw std::invalid_argument{"generate_trace: evasion_mimicry_rate must be within [0, 1]"};
  }
  if (config.evasion_families > 0 && config.evasion_cover_sites == 0) {
    throw std::invalid_argument{
        "generate_trace: evasion_cover_sites must be >= 1 when evasion families "
        "are enabled"};
  }
  if (config.iot_host_fraction < 0.0 || config.iot_host_fraction >= 1.0) {
    throw std::invalid_argument{
        "generate_trace: iot_host_fraction must be within [0, 1) (some hosts "
        "must remain general-purpose)"};
  }
  if (config.iot_host_fraction > 0.0 && config.iot_vendor_domains == 0) {
    throw std::invalid_argument{
        "generate_trace: iot_vendor_domains must be >= 1 when IoT profiles are "
        "enabled"};
  }
  Generator generator{config, sink};
  return generator.run();
}

}  // namespace dnsembed::trace
