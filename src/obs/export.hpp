// Telemetry exporters:
//  - write_metrics_json: one JSON document with counters, gauges,
//    histograms, and appended records — machine-readable run telemetry
//    (`dnsembed ... --metrics-out FILE`).
//  - write_prometheus: Prometheus text exposition (counters, gauges, and
//    histograms with cumulative `le` buckets; records have no Prometheus
//    shape and are skipped). Metric names are sanitized and prefixed
//    "dnsembed_".
//  - write_chrome_trace: Chrome trace_event JSON (array-of-"X"-events
//    form), loadable at ui.perfetto.dev or chrome://tracing
//    (`--trace-out FILE`).
//
// All exports are deterministic modulo wall-clock fields: metrics are
// sorted by name, records and trace events keep their global order, and
// TraceWriteOptions::zero_times zeroes ts/dur so tests can golden-file the
// trace shape.
#pragma once

#include <iosfwd>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace dnsembed::obs {

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot);

void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot);

struct TraceWriteOptions {
  /// Zero every ts/dur field (golden-file tests).
  bool zero_times = false;
};

void write_chrome_trace(std::ostream& out, const std::vector<SpanEvent>& events,
                        const TraceWriteOptions& options = {});

/// A complete multi-process trace: the supervising process's own events
/// (pid 1) plus one lane per worker task (pids 2+ in the given order —
/// pass SpanRecorder::process_lanes() for stable name-sorted assignment).
/// Lanes get `process_name` metadata events so Perfetto labels each pid
/// track with its task name; with no lanes the output is byte-identical to
/// the events-only overload.
struct TraceExport {
  std::vector<SpanEvent> events;
  std::vector<ProcessLane> lanes;
};

void write_chrome_trace(std::ostream& out, const TraceExport& trace,
                        const TraceWriteOptions& options = {});

}  // namespace dnsembed::obs
