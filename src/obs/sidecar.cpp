#include "obs/sidecar.hpp"

#include <sstream>

#include "util/artifact.hpp"

namespace dnsembed::obs {

namespace {

// Defensive ceilings for the parser: a sidecar from this codebase has a
// dozen bounds per histogram and a handful of fields per record, so any
// count beyond these is damage, not data — reject before allocating.
constexpr std::size_t kMaxBounds = 4096;
constexpr std::size_t kMaxFields = 4096;

[[noreturn]] void corrupt(const std::string& path, const std::string& reason) {
  throw util::CorruptArtifact{path, "telemetry sidecar: " + reason};
}

}  // namespace

std::string telemetry_sidecar_payload(bool include_spans) {
  std::ostringstream out;
  out.precision(17);  // doubles round-trip exactly through the parser
  out << "telemetry 1\n";
  const auto snap = metrics().snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (value != 0) out << "counter " << name << ' ' << value << '\n';
  }
  for (const auto& h : snap.histograms) {
    if (h.count == 0) continue;
    out << "histogram " << h.name << ' ' << h.bounds.size();
    for (const double bound : h.bounds) out << ' ' << bound;
    out << ' ' << h.buckets.size();
    for (const std::uint64_t bucket : h.buckets) out << ' ' << bucket;
    out << ' ' << h.sum_micros << '\n';
  }
  for (const auto& record : snap.records) {
    out << "record " << record.name << ' ' << record.fields.size();
    for (const auto& [key, value] : record.fields) out << ' ' << key << ' ' << value;
    out << '\n';
  }
  if (include_spans) {
    for (const auto& event : SpanRecorder::instance().sorted_events()) {
      out << "span " << event.name << ' ' << event.begin_ns << ' ' << event.end_ns << ' '
          << event.tid << ' ' << event.seq << '\n';
    }
  }
  return out.str();
}

void write_telemetry_sidecar(const std::string& path, bool include_spans) {
  util::save_artifact(path, kTelemetrySidecarKind, telemetry_sidecar_payload(include_spans));
}

TelemetrySidecar parse_telemetry_sidecar(const std::string& payload,
                                         const std::string& path) {
  std::istringstream in{payload};
  std::string verb;
  int version = 0;
  if (!(in >> verb >> version) || verb != "telemetry" || version != 1) {
    corrupt(path, "bad header");
  }
  TelemetrySidecar sidecar;
  while (in >> verb) {
    if (verb == "counter") {
      std::string name;
      std::uint64_t value = 0;
      if (!(in >> name >> value)) corrupt(path, "bad counter row");
      sidecar.counters.emplace_back(std::move(name), value);
    } else if (verb == "histogram") {
      TelemetrySidecar::HistogramData h;
      std::size_t n_bounds = 0;
      if (!(in >> h.name >> n_bounds) || n_bounds > kMaxBounds) {
        corrupt(path, "bad histogram bounds count");
      }
      h.bounds.resize(n_bounds);
      for (auto& bound : h.bounds) {
        if (!(in >> bound)) corrupt(path, "bad histogram bound");
      }
      std::size_t n_buckets = 0;
      if (!(in >> n_buckets) || n_buckets != n_bounds + 1) {
        corrupt(path, "bad histogram bucket count");
      }
      h.buckets.resize(n_buckets);
      for (auto& bucket : h.buckets) {
        if (!(in >> bucket)) corrupt(path, "bad histogram bucket");
      }
      if (!(in >> h.sum_micros)) corrupt(path, "bad histogram sum");
      sidecar.histograms.push_back(std::move(h));
    } else if (verb == "record") {
      MetricRecord record;
      std::size_t n_fields = 0;
      if (!(in >> record.name >> n_fields) || n_fields > kMaxFields) {
        corrupt(path, "bad record field count");
      }
      record.fields.resize(n_fields);
      for (auto& [key, value] : record.fields) {
        if (!(in >> key >> value)) corrupt(path, "bad record field");
      }
      sidecar.records.push_back(std::move(record));
    } else if (verb == "span") {
      SpanEvent event;
      if (!(in >> event.name >> event.begin_ns >> event.end_ns >> event.tid >> event.seq)) {
        corrupt(path, "bad span row");
      }
      sidecar.spans.push_back(std::move(event));
    } else {
      corrupt(path, "unknown row '" + verb + "'");
    }
  }
  return sidecar;
}

TelemetrySidecar load_telemetry_sidecar(const std::string& path) {
  return parse_telemetry_sidecar(util::load_artifact(path, kTelemetrySidecarKind), path);
}

void merge_sidecar_metrics(const TelemetrySidecar& sidecar) {
  auto& registry = metrics();
  for (const auto& [name, value] : sidecar.counters) {
    if (value != 0) registry.counter(name).add_raw(value);
  }
  for (const auto& h : sidecar.histograms) {
    if (!registry.histogram(h.name, h.bounds).merge_counts(h.buckets, h.sum_micros)) {
      util::log_warn() << "telemetry merge: histogram '" << h.name
                       << "' bucket layout mismatch; dropped";
    }
  }
}

}  // namespace dnsembed::obs
