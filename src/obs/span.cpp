#include "obs/span.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"

namespace dnsembed::obs {

namespace {

thread_local void* t_buffer = nullptr;  // SpanRecorder::ThreadBuffer*

}  // namespace

SpanRecorder& SpanRecorder::instance() {
  static SpanRecorder recorder;
  return recorder;
}

SpanRecorder::SpanRecorder() : epoch_{std::chrono::steady_clock::now()} {}

void SpanRecorder::set_enabled(bool enabled) {
  if (enabled && !trace_enabled()) {
    const std::lock_guard<std::mutex> lock{mutex_};
    bool empty = lanes_.empty();
    for (const auto& buffer : buffers_) empty = empty && buffer->events.empty();
    if (empty) epoch_ = std::chrono::steady_clock::now();
  }
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void SpanRecorder::clear() {
  const std::lock_guard<std::mutex> lock{mutex_};
  for (auto& buffer : buffers_) buffer->events.clear();
  lanes_.clear();
  seq_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

std::uint64_t SpanRecorder::now_ns() const noexcept {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - epoch_)
                                        .count());
}

SpanRecorder::ThreadBuffer& SpanRecorder::buffer_for_this_thread() {
  if (t_buffer == nullptr) {
    const std::lock_guard<std::mutex> lock{mutex_};
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffers_.back()->tid = static_cast<std::uint32_t>(buffers_.size());
    t_buffer = buffers_.back().get();
  }
  return *static_cast<ThreadBuffer*>(t_buffer);
}

void SpanRecorder::record(std::string name, std::uint64_t begin_ns, std::uint64_t end_ns,
                          std::uint64_t seq) {
  auto& buffer = buffer_for_this_thread();
  SpanEvent event;
  event.name = std::move(name);
  event.begin_ns = begin_ns;
  event.end_ns = end_ns;
  event.tid = buffer.tid;
  event.seq = seq;
  buffer.events.push_back(std::move(event));
}

std::vector<SpanEvent> SpanRecorder::sorted_events() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::vector<SpanEvent> events;
  for (const auto& buffer : buffers_) {
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) { return a.seq < b.seq; });
  return events;
}

void SpanRecorder::add_process_lane(const std::string& name,
                                    std::vector<SpanEvent> events) {
  const std::lock_guard<std::mutex> lock{mutex_};
  for (auto& lane : lanes_) {
    if (lane.name == name) {
      lane.events.insert(lane.events.end(), std::make_move_iterator(events.begin()),
                         std::make_move_iterator(events.end()));
      return;
    }
  }
  lanes_.push_back(ProcessLane{name, std::move(events)});
}

std::vector<ProcessLane> SpanRecorder::process_lanes() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::vector<ProcessLane> lanes = lanes_;
  std::sort(lanes.begin(), lanes.end(),
            [](const ProcessLane& a, const ProcessLane& b) { return a.name < b.name; });
  return lanes;
}

void Span::open(const char* name) {
  auto& recorder = SpanRecorder::instance();
  name_ = name;
  seq_ = recorder.next_seq();
  begin_ns_ = recorder.now_ns();
}

void Span::close() {
  auto& recorder = SpanRecorder::instance();
  recorder.record(name_, begin_ns_, recorder.now_ns(), seq_);
}

StageSpan::StageSpan(std::string name, util::LogLevel level)
    : name_{std::move(name)}, level_{level}, start_{std::chrono::steady_clock::now()} {
  if (trace_enabled()) {
    auto& recorder = SpanRecorder::instance();
    traced_ = true;
    seq_ = recorder.next_seq();
    begin_ns_ = recorder.now_ns();
  }
}

double StageSpan::seconds() const noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

StageSpan::~StageSpan() {
  const double elapsed = seconds();
  if (traced_) {
    auto& recorder = SpanRecorder::instance();
    recorder.record(name_, begin_ns_, recorder.now_ns(), seq_);
  }
  if (metrics_enabled()) {
    metrics().latency_histogram(name_ + ".seconds").observe(elapsed);
  }
  char line[160];
  std::snprintf(line, sizeof(line), "%s: %.2fs", name_.c_str(), elapsed);
  util::log_line(level_, line);
}

}  // namespace dnsembed::obs
