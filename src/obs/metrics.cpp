#include "obs/metrics.hpp"

#include <algorithm>

#include "util/fsio.hpp"
#include "util/log.hpp"
#include "util/simd.hpp"

namespace dnsembed::obs {

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t Counter::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& slot : slots_) sum += slot.value.load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() noexcept {
  for (auto& slot : slots_) slot.value.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::string name, std::span<const double> bounds)
    : name_{std::move(name)}, bounds_{bounds.begin(), bounds.end()} {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (auto& shard : shards_) {
    shard.buckets = std::vector<detail::Slot>(bounds_.size() + 1);
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < counts.size(); ++b) {
      counts[b] += shard.buckets[b].value.load(std::memory_order_relaxed);
    }
  }
  return counts;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& bucket : shard.buckets) {
      total += bucket.value.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::sum() const noexcept {
  return static_cast<double>(sum_micros_total()) / 1e6;
}

std::uint64_t Histogram::sum_micros_total() const noexcept {
  std::uint64_t micros = 0;
  for (const auto& shard : shards_) {
    micros += shard.sum_micros.load(std::memory_order_relaxed);
  }
  return micros;
}

bool Histogram::merge_counts(std::span<const std::uint64_t> buckets,
                             std::uint64_t sum_micros) noexcept {
  if (buckets.size() != bounds_.size() + 1) return false;
  auto& shard = shards_[0];
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    shard.buckets[b].value.fetch_add(buckets[b], std::memory_order_relaxed);
  }
  shard.sum_micros.fetch_add(sum_micros, std::memory_order_relaxed);
  return true;
}

void Histogram::reset() noexcept {
  for (auto& shard : shards_) {
    for (auto& bucket : shard.buckets) bucket.value.store(0, std::memory_order_relaxed);
    shard.sum_micros.store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = counter_index_.find(std::string{name});
  if (it != counter_index_.end()) return *it->second;
  counters_.push_back(std::unique_ptr<Counter>{new Counter{std::string{name}}});
  Counter& created = *counters_.back();
  counter_index_.emplace(created.name(), &created);
  return created;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = gauge_index_.find(std::string{name});
  if (it != gauge_index_.end()) return *it->second;
  gauges_.push_back(std::unique_ptr<Gauge>{new Gauge{std::string{name}}});
  Gauge& created = *gauges_.back();
  gauge_index_.emplace(created.name(), &created);
  return created;
}

Histogram& Registry::histogram(std::string_view name, std::span<const double> bounds) {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = histogram_index_.find(std::string{name});
  if (it != histogram_index_.end()) return *it->second;
  histograms_.push_back(std::unique_ptr<Histogram>{new Histogram{std::string{name}, bounds}});
  Histogram& created = *histograms_.back();
  histogram_index_.emplace(created.name(), &created);
  return created;
}

Histogram& Registry::latency_histogram(std::string_view name) {
  return histogram(name, latency_seconds_bounds());
}

Histogram& Registry::fine_latency_histogram(std::string_view name) {
  return histogram(name, fine_latency_seconds_bounds());
}

std::span<const double> Registry::latency_seconds_bounds() noexcept {
  // Powers of 4 from 1ms to ~17min: wide enough for packet handling
  // through full-pipeline stages with 11 buckets.
  static const double bounds[] = {0.001, 0.004, 0.016, 0.064, 0.256, 1.024,
                                  4.096, 16.384, 65.536, 262.144, 1048.576};
  return bounds;
}

std::span<const double> Registry::fine_latency_seconds_bounds() noexcept {
  // Powers of 4 from 1µs to ~4s: a serve-path index hit lands in the first
  // few buckets and a batched-scorer fallback (deadline-bounded, sub-ms to
  // tens of ms) still resolves instead of collapsing into bucket zero of
  // the stage-scale bounds above.
  static const double bounds[] = {0.000001, 0.000004, 0.000016, 0.000064,
                                  0.000256, 0.001024, 0.004096, 0.016384,
                                  0.065536, 0.262144, 1.048576, 4.194304};
  return bounds;
}

std::span<const double> Registry::size_bounds() noexcept {
  static const double bounds[] = {1,    4,     16,    64,     256,   1024,
                                  4096, 16384, 65536, 262144, 1048576};
  return bounds;
}

void Registry::append_record(std::string_view name,
                             std::vector<std::pair<std::string, double>> fields) {
  if (!metrics_enabled()) return;
  const std::lock_guard<std::mutex> lock{mutex_};
  records_.push_back(MetricRecord{std::string{name}, std::move(fields)});
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size() + 4);
  for (const auto& c : counters_) snap.counters.emplace_back(c->name(), c->total());
  // The fsio and logging layers (src/util) cannot depend on obs, so they
  // keep their own always-on counters; republish them here so every metrics
  // export shows the I/O retry / atomic-commit / corruption / suppressed-log
  // picture. Folding (instead of blindly appending) matters once telemetry
  // sidecars are merged: the supervisor folds each worker's republished
  // totals into same-named registry counters, and a second appended entry
  // would produce duplicate keys in the JSON export.
  {
    const auto fold = [&snap](const char* name, std::uint64_t value) {
      for (auto& entry : snap.counters) {
        if (entry.first == name) {
          entry.second += value;
          return;
        }
      }
      snap.counters.emplace_back(name, value);
    };
    const auto io = util::fsio::stats();
    fold("io.retries", io.retries);
    fold("io.atomic_renames", io.atomic_renames);
    fold("io.faults_injected", io.faults_injected);
    fold("artifact.corrupt_detected", io.corrupt_detected);
    fold("log.suppressed", util::suppressed_log_count());
  }
  snap.gauges.reserve(gauges_.size() + 1);
  for (const auto& g : gauges_) snap.gauges.emplace_back(g->name(), g->value());
  // Same inversion as the fsio counters above: the SIMD dispatch layer lives
  // in src/util, so republish the resolved rung here instead of having util
  // push it.
  snap.gauges.emplace_back("simd.level",
                           static_cast<std::int64_t>(util::simd::active_level()));
  snap.histograms.reserve(histograms_.size());
  for (const auto& h : histograms_) {
    HistogramSnapshot hs;
    hs.name = h->name();
    hs.bounds = h->bounds();
    hs.buckets = h->bucket_counts();
    hs.count = h->count();
    hs.sum_micros = h->sum_micros_total();
    hs.sum = static_cast<double>(hs.sum_micros) / 1e6;
    snap.histograms.push_back(std::move(hs));
  }
  const auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  snap.records = records_;
  return snap;
}

void Registry::reset_values() {
  const std::lock_guard<std::mutex> lock{mutex_};
  for (const auto& c : counters_) c->reset();
  for (const auto& g : gauges_) g->reset();
  for (const auto& h : histograms_) h->reset();
  records_.clear();
  util::fsio::reset_stats();
  util::reset_suppressed_log_count();
}

}  // namespace dnsembed::obs
