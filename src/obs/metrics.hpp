// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms, built so hot loops (projection pair counting, LINE SGD
// sampling, SVM kernel fill) can be instrumented without contending on a
// shared cache line.
//
// Design:
//  - One global enabled flag. Every mutation first does a relaxed load of
//    that flag and returns when no metrics sink is configured, so an
//    uninstrumented run pays one predicted branch per event (the overhead
//    budget is <= 3% on the projection hot loop; bench/micro_obs enforces
//    it).
//  - Per-thread sharded slots: each counter/histogram owns kShards
//    cache-line-aligned slots; a thread picks its slot from a stable
//    per-thread index, so an enabled hot loop pays at most one relaxed
//    atomic add per event and threads never bounce a line between cores.
//  - Handles are registered once by name ("stage.subsystem.name", see
//    DESIGN.md §7) and live for the process lifetime, so call sites cache
//    `static obs::Counter& c = obs::metrics().counter("...")`.
//  - snapshot() merges the shards into a deterministic view (metrics sorted
//    by name, records in append order) for the JSON / Prometheus exporters.
//
// Records are small ordered key/value snapshots (e.g. one per streaming
// detector day) that belong in the JSON export but have no Prometheus
// equivalent; the text exporter skips them.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dnsembed::obs {

inline std::atomic<bool> g_metrics_enabled{false};

inline bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept;

namespace detail {

inline constexpr std::size_t kShards = 16;

/// Stable per-thread slot index in [0, kShards): threads are numbered in
/// first-use order, so a pool of T workers spreads across min(T, kShards)
/// distinct cache lines.
inline std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

struct alignas(64) Slot {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace detail

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) return;
    slots_[detail::shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Ungated add for cross-process telemetry merge: folds a worker's counter
  /// total into this process's counter regardless of the enabled flag, so
  /// merge correctness never depends on flag ordering.
  void add_raw(std::uint64_t n) noexcept {
    slots_[detail::shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum across shards (exact once mutating threads have been joined).
  std::uint64_t total() const noexcept;
  const std::string& name() const noexcept { return name_; }
  void reset() noexcept;

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_{std::move(name)} {}

  std::string name_;
  std::array<detail::Slot, detail::kShards> slots_;
};

/// Point-in-time value (set wins over add; not sharded — gauges are not
/// hot-loop metrics).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    if (!metrics_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  std::int64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const noexcept { return name_; }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_{std::move(name)} {}

  std::string name_;
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram with Prometheus `le` semantics: bucket i counts
/// observations <= bounds[i]; one extra overflow bucket counts the rest.
/// The sum is kept in integer micro-units so the whole update path is
/// relaxed fetch_adds (two per observation: bucket + sum).
class Histogram {
 public:
  void observe(double value) noexcept {
    if (!metrics_enabled()) return;
    auto& shard = shards_[detail::shard_index()];
    std::size_t b = 0;
    while (b < bounds_.size() && value > bounds_[b]) ++b;
    shard.buckets[b].value.fetch_add(1, std::memory_order_relaxed);
    const double micros = value * 1e6;
    shard.sum_micros.fetch_add(
        micros <= 0.0 ? 0 : static_cast<std::uint64_t>(micros + 0.5),
        std::memory_order_relaxed);
  }

  const std::string& name() const noexcept { return name_; }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket (non-cumulative) counts merged across shards; the final
  /// element is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  /// The exact integer micro-unit sum, for lossless cross-process merge.
  std::uint64_t sum_micros_total() const noexcept;
  /// Fold another process's raw bucket counts and micro-unit sum into this
  /// histogram (ungated, like Counter::add_raw). Returns false — and merges
  /// nothing — when the bucket layout does not match this histogram's.
  bool merge_counts(std::span<const std::uint64_t> buckets,
                    std::uint64_t sum_micros) noexcept;
  void reset() noexcept;

 private:
  friend class Registry;
  Histogram(std::string name, std::span<const double> bounds);

  struct Shard {
    std::vector<detail::Slot> buckets;  // bounds.size() + 1
    alignas(64) std::atomic<std::uint64_t> sum_micros{0};
  };

  std::string name_;
  std::vector<double> bounds_;  // strictly increasing
  std::array<Shard, detail::kShards> shards_;
};

/// Ordered key/value snapshot appended to the registry (per-day streaming
/// telemetry and similar event-shaped data).
struct MetricRecord {
  std::string name;
  std::vector<std::pair<std::string, double>> fields;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1, non-cumulative
  std::uint64_t count = 0;
  double sum = 0.0;
  /// Exact micro-unit sum backing `sum`; telemetry sidecars serialize this
  /// so a merged histogram sum is bit-identical to the single-process one.
  std::uint64_t sum_micros = 0;
};

/// Deterministic merged view for the exporters: metrics sorted by name,
/// records in append order.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<MetricRecord> records;
};

class Registry {
 public:
  static Registry& instance();

  /// Find-or-create by name. References stay valid for the process
  /// lifetime. A histogram's bounds are fixed by its first registration.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::span<const double> bounds);
  /// Histogram with the default latency bounds (seconds, 1ms..16min).
  Histogram& latency_histogram(std::string_view name);
  /// Histogram with the fine latency bounds (seconds, 1µs..~4s) — for
  /// request-scale paths (the serve daemon's per-lookup latency) where the
  /// stage-scale buckets above would collapse everything into one bucket.
  Histogram& fine_latency_histogram(std::string_view name);

  /// Default bucket bounds: powers of 4 from 1ms (latency, seconds),
  /// powers of 4 from 1µs (fine latency, seconds), and powers of 4 from 1
  /// (sizes/counts).
  static std::span<const double> latency_seconds_bounds() noexcept;
  static std::span<const double> fine_latency_seconds_bounds() noexcept;
  static std::span<const double> size_bounds() noexcept;

  void append_record(std::string_view name,
                     std::vector<std::pair<std::string, double>> fields);

  MetricsSnapshot snapshot() const;

  /// Zero every value and drop records; registered handles stay valid.
  /// For tests and repeated in-process runs.
  void reset_values();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
  std::unordered_map<std::string, Counter*> counter_index_;
  std::unordered_map<std::string, Gauge*> gauge_index_;
  std::unordered_map<std::string, Histogram*> histogram_index_;
  std::vector<MetricRecord> records_;
};

/// Shorthand for Registry::instance().
inline Registry& metrics() { return Registry::instance(); }

}  // namespace dnsembed::obs
