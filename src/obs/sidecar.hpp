// Telemetry sidecars: the cross-process half of the obs subsystem. The
// metrics registry and span recorder are process-wide, so everything a
// supervised worker records would die with the child; instead each worker
// serializes its full registry snapshot + span buffer into a checksummed
// "telemetry-sidecar" artifact under the supervisor's scratch directory
// (workdir/sv/tm.<task>), and the supervisor folds the sidecar of every
// successful attempt back into its own registry/recorder. The merged view
// is what --metrics-out / --trace-out export.
//
// Merge semantics (see DESIGN.md §14):
//  - counters: summed by name (Counter::add_raw, so deterministic pipeline
//    counters match a single-process run byte-for-byte);
//  - histograms: raw bucket counts + exact integer micro-unit sums summed
//    by name (Histogram::merge_counts) — no double rounding;
//  - records: returned to the caller, which appends them in (task, seq)
//    order after the batch completes (completion order is nondeterministic);
//  - spans: returned for the caller to rebase onto its own epoch and attach
//    as a per-task ProcessLane (one pid per worker task in the trace);
//  - gauges: point-in-time and process-local — never serialized.
//
// The payload is a line-oriented text table (names are dotted identifiers,
// never containing whitespace); the container layer supplies versioning and
// corruption detection, and parse errors throw util::CorruptArtifact so a
// damaged sidecar is indistinguishable from a damaged container: the
// supervisor warns, drops that worker's telemetry, and continues.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace dnsembed::obs {

inline constexpr const char* kTelemetrySidecarKind = "telemetry-sidecar";

/// Parsed sidecar contents (one worker attempt's telemetry).
struct TelemetrySidecar {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  struct HistogramData {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1
    std::uint64_t sum_micros = 0;
  };
  std::vector<HistogramData> histograms;
  std::vector<MetricRecord> records;
  std::vector<SpanEvent> spans;
};

/// Serialize the calling process's current registry snapshot (and, when
/// `include_spans`, its span buffer — only safe once recording threads are
/// quiescent) into a sidecar payload. Zero-valued counters and empty
/// histograms are skipped.
std::string telemetry_sidecar_payload(bool include_spans);

/// Atomically write the current telemetry as a sidecar artifact at `path`.
/// Throws util::fsio::IoError on I/O failure.
void write_telemetry_sidecar(const std::string& path, bool include_spans);

/// Parse a sidecar payload; throws util::CorruptArtifact (tagged with
/// `path`) on any malformed content.
TelemetrySidecar parse_telemetry_sidecar(const std::string& payload,
                                         const std::string& path);

/// Load + validate + parse a sidecar artifact file. Throws
/// util::CorruptArtifact on damage and util::fsio::IoError on I/O failure.
TelemetrySidecar load_telemetry_sidecar(const std::string& path);

/// Fold a worker's counters and histograms into this process's registry
/// (ungated adds). Records and spans are left to the caller: records need
/// deterministic (task, seq) append order across workers, and spans need an
/// epoch rebase before becoming a ProcessLane.
void merge_sidecar_metrics(const TelemetrySidecar& sidecar);

}  // namespace dnsembed::obs
