// Hierarchical span tracing: OBS_SPAN("embed.line.epoch")-style scoped
// timers that record begin/end/thread-id into per-thread buffers and export
// as Chrome trace_event JSON (obs/export.hpp), loadable in Perfetto.
//
// Nesting needs no explicit parent links: spans are exported as "X"
// (complete) events, and Perfetto nests events that overlap in time on the
// same thread track — so a stage span opened in run_pipeline naturally
// encloses the projection-shard and LINE-worker spans its callees open,
// and worker-thread spans land on their own tracks.
//
// Cost model mirrors obs/metrics.hpp: when tracing is disabled (no
// --trace-out sink) a Span is one relaxed load + branch; when enabled, two
// steady_clock reads and one push_back into a thread-local buffer. Spans
// sit at stage/chunk granularity, never per-event in hot loops.
//
// Determinism: every span takes a global sequence number at open, and the
// exporter orders events by it, so with wall-clock fields zeroed
// (TraceWriteOptions::zero_times) the export is byte-stable and can be
// golden-filed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/log.hpp"

namespace dnsembed::obs {

inline std::atomic<bool> g_trace_enabled{false};

inline bool trace_enabled() noexcept {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

struct SpanEvent {
  std::string name;
  std::uint64_t begin_ns = 0;  // relative to the recorder epoch
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;  // stable small id, assigned in first-span order
  std::uint64_t seq = 0;  // global open order (parents precede children)
};

/// One worker task's spans, imported from its telemetry sidecar and rebased
/// to this process's epoch. The Chrome-trace exporter renders each lane as
/// its own pid with a `process_name` metadata event, so Perfetto shows e.g.
/// "behavior.query.s1" or "embed.temporal" as a separate process track.
struct ProcessLane {
  std::string name;
  std::vector<SpanEvent> events;  // the worker's own seq order
};

class SpanRecorder {
 public:
  static SpanRecorder& instance();

  /// Enabling (re)arms the epoch when no events were recorded yet.
  void set_enabled(bool enabled);
  /// Drop all recorded events and re-arm the epoch (tests / reuse).
  void clear();

  /// Nanoseconds since the recorder epoch.
  std::uint64_t now_ns() const noexcept;
  std::uint64_t next_seq() noexcept { return seq_.fetch_add(1, std::memory_order_relaxed); }

  /// Record one closed span on the calling thread's buffer.
  void record(std::string name, std::uint64_t begin_ns, std::uint64_t end_ns,
              std::uint64_t seq);

  /// Merged events ordered by seq. Call only after the threads that
  /// recorded spans have been joined (or are quiescent).
  std::vector<SpanEvent> sorted_events() const;

  /// Attach a worker task's spans as a dedicated export lane. Events must
  /// already be rebased to this recorder's epoch; re-adding a name appends
  /// to the existing lane.
  void add_process_lane(const std::string& name, std::vector<SpanEvent> events);

  /// Lanes sorted by name: pid/lane assignment in the trace export must not
  /// depend on worker completion order.
  std::vector<ProcessLane> process_lanes() const;

 private:
  SpanRecorder();

  struct ThreadBuffer {
    std::uint32_t tid = 0;
    std::vector<SpanEvent> events;
  };

  ThreadBuffer& buffer_for_this_thread();

  mutable std::mutex mutex_;  // guards buffers_ registration and draining
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<ProcessLane> lanes_;
  std::atomic<std::uint64_t> seq_{0};
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: inert (one relaxed load + branch) when tracing is disabled
/// at construction.
class Span {
 public:
  explicit Span(const char* name) {
    if (trace_enabled()) open(name);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (name_ != nullptr) close();
  }

 private:
  void open(const char* name);
  void close();

  const char* name_ = nullptr;
  std::uint64_t begin_ns_ = 0;
  std::uint64_t seq_ = 0;
};

/// Stage-level span: in addition to the trace event it always times the
/// stage, records the duration into the latency histogram "<name>.seconds",
/// and emits one "<name>: X.XXs" log line at `level` on close — so stage
/// timings appear exactly once, in both the log and the trace export.
class StageSpan {
 public:
  explicit StageSpan(std::string name, util::LogLevel level = util::LogLevel::kInfo);
  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;
  ~StageSpan();

  double seconds() const noexcept;

 private:
  std::string name_;
  util::LogLevel level_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t begin_ns_ = 0;
  std::uint64_t seq_ = 0;
  bool traced_ = false;
};

#define DNSEMBED_OBS_CONCAT2(a, b) a##b
#define DNSEMBED_OBS_CONCAT(a, b) DNSEMBED_OBS_CONCAT2(a, b)
/// Scoped span covering the rest of the enclosing block.
#define OBS_SPAN(name) \
  ::dnsembed::obs::Span DNSEMBED_OBS_CONCAT(obs_span_, __COUNTER__) { name }

}  // namespace dnsembed::obs
