#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>

namespace dnsembed::obs {

namespace {

/// JSON-friendly number formatting: integers print without a decimal
/// point, everything else as shortest-ish %.6g (histogram sums are
/// micro-unit precise, 6 significant digits is plenty).
std::string number(double value) {
  if (std::isfinite(value) && value == std::floor(value) && std::fabs(value) < 9e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string quoted(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// Prometheus metric name: "graph.projection.pairs" ->
/// "dnsembed_graph_projection_pairs".
std::string prom_name(const std::string& name) {
  std::string out = "dnsembed_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot) {
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    " << quoted(snapshot.counters[i].first) << ": "
        << snapshot.counters[i].second;
  }
  out << (snapshot.counters.empty() ? "},\n" : "\n  },\n");

  out << "  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    " << quoted(snapshot.gauges[i].first) << ": "
        << snapshot.gauges[i].second;
  }
  out << (snapshot.gauges.empty() ? "},\n" : "\n  },\n");

  out << "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    " << quoted(h.name) << ": {\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      out << (b == 0 ? "" : ", ") << number(h.bounds[b]);
    }
    out << "], \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      out << (b == 0 ? "" : ", ") << h.buckets[b];
    }
    out << "], \"count\": " << h.count << ", \"sum\": " << number(h.sum) << "}";
  }
  out << (snapshot.histograms.empty() ? "},\n" : "\n  },\n");

  out << "  \"records\": [";
  for (std::size_t i = 0; i < snapshot.records.size(); ++i) {
    const auto& record = snapshot.records[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": " << quoted(record.name);
    for (const auto& [key, value] : record.fields) {
      out << ", " << quoted(key) << ": " << number(value);
    }
    out << "}";
  }
  out << (snapshot.records.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
}

void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    const auto prom = prom_name(name);
    out << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const auto prom = prom_name(name);
    out << "# TYPE " << prom << " gauge\n" << prom << " " << value << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const auto prom = prom_name(h.name);
    out << "# TYPE " << prom << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cumulative += h.buckets[b];
      out << prom << "_bucket{le=\"" << number(h.bounds[b]) << "\"} " << cumulative << "\n";
    }
    out << prom << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << prom << "_sum " << number(h.sum) << "\n";
    out << prom << "_count " << h.count << "\n";
  }
}

namespace {

void write_trace_impl(std::ostream& out, const std::vector<SpanEvent>& events,
                      const std::vector<ProcessLane>& lanes,
                      const TraceWriteOptions& options) {
  out << "{\"traceEvents\": [";
  bool first = true;
  const auto separator = [&first, &out]() {
    out << (first ? "\n" : ",\n");
    first = false;
  };
  const auto emit_event = [&](const SpanEvent& event, std::size_t pid) {
    const double ts = options.zero_times ? 0.0 : static_cast<double>(event.begin_ns) / 1e3;
    const double dur =
        options.zero_times ? 0.0
                           : static_cast<double>(event.end_ns - event.begin_ns) / 1e3;
    char buf[64];
    separator();
    out << "  {\"name\": " << quoted(event.name) << ", \"ph\": \"X\", \"pid\": " << pid
        << ", \"tid\": " << event.tid;
    std::snprintf(buf, sizeof(buf), ", \"ts\": %.3f, \"dur\": %.3f", ts, dur);
    out << buf << ", \"args\": {\"seq\": " << event.seq << "}}";
  };
  // Name the pid tracks only for multi-process traces: a single-process
  // export stays byte-identical to what it was before lanes existed.
  if (!lanes.empty()) {
    separator();
    out << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"args\": {\"name\": \"supervisor\"}}";
    for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
      separator();
      out << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << lane + 2
          << ", \"args\": {\"name\": " << quoted(lanes[lane].name) << "}}";
    }
  }
  for (const auto& event : events) emit_event(event, 1);
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    for (const auto& event : lanes[lane].events) emit_event(event, lane + 2);
  }
  out << (first ? "], " : "\n], ");
  out << "\"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace

void write_chrome_trace(std::ostream& out, const std::vector<SpanEvent>& events,
                        const TraceWriteOptions& options) {
  write_trace_impl(out, events, {}, options);
}

void write_chrome_trace(std::ostream& out, const TraceExport& trace,
                        const TraceWriteOptions& options) {
  write_trace_impl(out, trace.events, trace.lanes, options);
}

}  // namespace dnsembed::obs
