#include "core/belief_propagation.hpp"

#include <cmath>
#include <stdexcept>

namespace dnsembed::core {

namespace {

struct Message {
  double benign = 0.5;
  double malicious = 0.5;
};

void normalize(Message& m) {
  const double total = m.benign + m.malicious;
  if (total <= 0.0) {
    m.benign = m.malicious = 0.5;
    return;
  }
  m.benign /= total;
  m.malicious /= total;
}

}  // namespace

std::vector<double> bp_domain_beliefs(const graph::BipartiteGraph& hdbg,
                                      const std::unordered_map<std::string, int>& seed_labels,
                                      const BeliefPropagationConfig& config) {
  if (config.homophily <= 0.0 || config.homophily >= 1.0) {
    throw std::invalid_argument{"bp: homophily must be in (0,1)"};
  }
  if (config.seed_malicious_prior <= 0.0 || config.seed_malicious_prior >= 1.0 ||
      config.seed_benign_prior <= 0.0 || config.seed_benign_prior >= 1.0) {
    throw std::invalid_argument{"bp: priors must be in (0,1)"};
  }

  const std::size_t hosts = hdbg.left_count();
  const std::size_t domains = hdbg.right_count();

  // Node priors: phi(malicious).
  std::vector<double> domain_prior(domains, config.unknown_prior);
  for (graph::VertexId d = 0; d < domains; ++d) {
    const auto it = seed_labels.find(hdbg.right_names().name(d));
    if (it != seed_labels.end()) {
      domain_prior[d] = it->second == 1 ? config.seed_malicious_prior
                                        : config.seed_benign_prior;
    }
  }
  const std::vector<double> host_prior(hosts, config.unknown_prior);

  // Messages live on directed edges. Index edges per side by walking the
  // adjacency in a fixed order; host->domain and domain->host stores.
  // For each host h, messages to each neighbor domain; and vice versa.
  std::vector<std::vector<Message>> host_to_domain(hosts);
  std::vector<std::vector<Message>> domain_to_host(domains);
  for (graph::VertexId h = 0; h < hosts; ++h) {
    host_to_domain[h].resize(hdbg.left_neighbors(h).size());
  }
  for (graph::VertexId d = 0; d < domains; ++d) {
    domain_to_host[d].resize(hdbg.right_neighbors(d).size());
  }

  // Fast lookup of the slot of neighbor v in u's adjacency (sorted lists).
  const auto slot_of = [](std::span<const graph::VertexId> neighbors, graph::VertexId v) {
    const auto it = std::lower_bound(neighbors.begin(), neighbors.end(), v);
    return static_cast<std::size_t>(it - neighbors.begin());
  };

  const double same = config.homophily;
  const double diff = 1.0 - config.homophily;

  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    // Host -> domain messages (synchronous, computed from the previous
    // domain -> host messages).
    std::vector<std::vector<Message>> new_h2d = host_to_domain;
    for (graph::VertexId h = 0; h < hosts; ++h) {
      const auto neighbors = hdbg.left_neighbors(h);
      for (std::size_t k = 0; k < neighbors.size(); ++k) {
        // Product of incoming messages from all OTHER domains.
        double in_benign = 1.0 - host_prior[h];
        double in_malicious = host_prior[h];
        for (std::size_t j = 0; j < neighbors.size(); ++j) {
          if (j == k) continue;
          const graph::VertexId d = neighbors[j];
          const auto& m = domain_to_host[d][slot_of(hdbg.right_neighbors(d), h)];
          in_benign *= m.benign;
          in_malicious *= m.malicious;
          // Rescale to dodge underflow on high-degree hosts.
          const double scale = in_benign + in_malicious;
          if (scale > 0.0 && scale < 1e-100) {
            in_benign /= scale;
            in_malicious /= scale;
          }
        }
        Message out;
        out.benign = same * in_benign + diff * in_malicious;
        out.malicious = diff * in_benign + same * in_malicious;
        normalize(out);
        new_h2d[h][k] = out;
      }
    }
    // Domain -> host messages.
    std::vector<std::vector<Message>> new_d2h = domain_to_host;
    for (graph::VertexId d = 0; d < domains; ++d) {
      const auto neighbors = hdbg.right_neighbors(d);
      for (std::size_t k = 0; k < neighbors.size(); ++k) {
        double in_benign = 1.0 - domain_prior[d];
        double in_malicious = domain_prior[d];
        for (std::size_t j = 0; j < neighbors.size(); ++j) {
          if (j == k) continue;
          const graph::VertexId h = neighbors[j];
          const auto& m = host_to_domain[h][slot_of(hdbg.left_neighbors(h), d)];
          in_benign *= m.benign;
          in_malicious *= m.malicious;
          const double scale = in_benign + in_malicious;
          if (scale > 0.0 && scale < 1e-100) {
            in_benign /= scale;
            in_malicious /= scale;
          }
        }
        Message out;
        out.benign = same * in_benign + diff * in_malicious;
        out.malicious = diff * in_benign + same * in_malicious;
        normalize(out);
        new_d2h[d][k] = out;
      }
    }
    host_to_domain = std::move(new_h2d);
    domain_to_host = std::move(new_d2h);
  }

  // Final domain beliefs.
  std::vector<double> beliefs(domains, config.unknown_prior);
  for (graph::VertexId d = 0; d < domains; ++d) {
    double benign = 1.0 - domain_prior[d];
    double malicious = domain_prior[d];
    for (const graph::VertexId h : hdbg.right_neighbors(d)) {
      const auto& m = host_to_domain[h][slot_of(hdbg.left_neighbors(h), d)];
      benign *= m.benign;
      malicious *= m.malicious;
      const double scale = benign + malicious;
      if (scale > 0.0 && scale < 1e-100) {
        benign /= scale;
        malicious /= scale;
      }
    }
    const double total = benign + malicious;
    beliefs[d] = total > 0.0 ? malicious / total : config.unknown_prior;
  }
  return beliefs;
}

}  // namespace dnsembed::core
