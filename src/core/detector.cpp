#include "core/detector.hpp"

#include <algorithm>

namespace dnsembed::core {

ml::Dataset make_dataset(const embed::EmbeddingMatrix& embedding,
                         const intel::LabeledSet& labels) {
  ml::Dataset data;
  data.x = ml::Matrix{labels.size(), embedding.dimension()};
  data.y = labels.labels;
  data.names = labels.domains;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (const auto vec = embedding.vector_for(labels.domains[i])) {
      auto dst = data.x.row(i);
      for (std::size_t d = 0; d < vec->size(); ++d) dst[d] = (*vec)[d];
    }
  }
  data.validate();
  return data;
}

DetectionEvaluation evaluate_svm(const ml::Dataset& data, const ml::SvmConfig& svm,
                                 std::size_t folds, std::uint64_t seed) {
  DetectionEvaluation eval;
  eval.folds = folds;
  eval.scores = ml::cross_validate(
      data, folds, seed, [&svm](const ml::Dataset& train, const ml::Dataset& test) {
        const ml::SvmModel model = ml::train_svm(train, svm);
        return model.decision_values(test.x);
      });
  eval.roc = ml::roc_curve(eval.scores.scores, eval.scores.labels);
  eval.auc = ml::roc_auc(eval.scores.scores, eval.scores.labels);
  eval.confusion_at_zero = ml::confusion_at(eval.scores.scores, eval.scores.labels, 0.0);
  return eval;
}

DomainDetector::DomainDetector(const embed::EmbeddingMatrix& embedding,
                               const intel::LabeledSet& labels, const ml::SvmConfig& svm)
    : embedding_{&embedding},
      model_{ml::train_svm(make_dataset(embedding, labels), svm)},
      svm_config_{svm} {}

double DomainDetector::score(const std::string& domain) const {
  std::vector<double> x(embedding_->dimension(), 0.0);
  if (const auto vec = embedding_->vector_for(domain)) {
    for (std::size_t d = 0; d < vec->size(); ++d) x[d] = (*vec)[d];
  }
  return model_.decision_value(x);
}

bool DomainDetector::is_malicious(const std::string& domain, double threshold) const {
  return score(domain) >= threshold;
}

bool DomainDetector::knows(const std::string& domain) const {
  return embedding_->index_of(domain).has_value();
}

void DomainDetector::calibrate(const intel::LabeledSet& labels, std::size_t folds,
                               std::uint64_t seed) {
  // Out-of-fold decision values avoid the optimistic bias of calibrating
  // on the same data the deployed model was trained on.
  const auto data = make_dataset(*embedding_, labels);
  const auto& svm = svm_config_;
  const auto cv = ml::cross_validate(
      data, folds, seed, [&svm](const ml::Dataset& train, const ml::Dataset& test) {
        return ml::train_svm(train, svm).decision_values(test.x);
      });
  scaler_.fit(cv.scores, cv.labels);
}

double DomainDetector::probability(const std::string& domain) const {
  return scaler_.probability(score(domain));
}

}  // namespace dnsembed::core
