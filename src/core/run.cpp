#include "core/run.hpp"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "core/behavior.hpp"
#include "core/clustering.hpp"
#include "core/report.hpp"
#include "graph/io.hpp"
#include "intel/labels.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "trace/generator.hpp"
#include "util/artifact.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace dnsembed::core {

StageDeadlineExceeded::StageDeadlineExceeded(std::string stage)
    : std::runtime_error{"stage '" + stage + "' exceeded its deadline"},
      stage_{std::move(stage)} {}

namespace {

// ---------------------------------------------------------------- layout

/// Artifact files per stage. kind == nullptr marks a raw (non-container)
/// file whose digest is still tracked in the manifest (the report).
struct ArtifactSpec {
  const char* file;
  const char* kind;
};

struct StageSpec {
  const char* name;
  std::vector<ArtifactSpec> artifacts;
};

const std::vector<StageSpec>& stage_specs() {
  static const std::vector<StageSpec> specs{
      {"trace",
       {{"hdbg.bg", "bipartite-graph"},
        {"dibg.bg", "bipartite-graph"},
        {"dtbg.bg", "bipartite-graph"},
        {"truth.gt", "ground-truth"},
        {"trace.stats", "trace-stats"}}},
      {"behavior",
       {{"kept.domains", "domain-list"},
        {"query_sim.csr", "csr-graph"},
        {"ip_sim.csr", "csr-graph"},
        {"temporal_sim.csr", "csr-graph"}}},
      {"embed",
       {{"query.emb", "embedding-arena"},
        {"ip.emb", "embedding-arena"},
        {"temporal.emb", "embedding-arena"},
        {"combined.emb", "embedding-arena"}}},
      {"labels", {{"labeled.set", "labeled-set"}}},
      {"report", {{"report.md", nullptr}}},
  };
  return specs;
}

std::string join(const std::string& dir, const char* file) { return dir + "/" + file; }

// ------------------------------------------------------- small payloads

struct TraceStats {
  std::size_t dns_events = 0;
  std::size_t nxdomain_events = 0;
  std::size_t flow_events = 0;
};

std::string trace_stats_payload(const TraceStats& stats) {
  std::ostringstream out;
  out << "dns_events " << stats.dns_events << "\nnxdomain_events " << stats.nxdomain_events
      << "\nflow_events " << stats.flow_events << "\n";
  return out.str();
}

[[noreturn]] void corrupt_payload(const std::string& path, std::string reason) {
  util::fsio::note_corrupt_detected();
  throw util::CorruptArtifact{path, std::move(reason)};
}

TraceStats parse_trace_stats(const std::string& payload, const std::string& path) {
  std::istringstream in{payload};
  TraceStats stats;
  std::string key;
  if (!(in >> key >> stats.dns_events) || key != "dns_events") {
    corrupt_payload(path, "trace-stats: bad dns_events");
  }
  if (!(in >> key >> stats.nxdomain_events) || key != "nxdomain_events") {
    corrupt_payload(path, "trace-stats: bad nxdomain_events");
  }
  if (!(in >> key >> stats.flow_events) || key != "flow_events") {
    corrupt_payload(path, "trace-stats: bad flow_events");
  }
  return stats;
}

std::string domain_list_payload(const std::vector<std::string>& domains) {
  std::string out = "domains " + std::to_string(domains.size()) + "\n";
  for (const auto& domain : domains) {
    out += domain;
    out += '\n';
  }
  return out;
}

std::vector<std::string> parse_domain_list(const std::string& payload, const std::string& path) {
  std::istringstream in{payload};
  std::string key;
  std::size_t count = 0;
  if (!(in >> key >> count) || key != "domains") {
    corrupt_payload(path, "domain-list: bad header");
  }
  std::vector<std::string> out;
  out.reserve(count);
  std::string domain;
  for (std::size_t i = 0; i < count; ++i) {
    if (!(in >> domain)) corrupt_payload(path, "domain-list: truncated");
    out.push_back(domain);
  }
  return out;
}

// -------------------------------------------------------------- manifest

struct ManifestEntry {
  std::string file;
  std::string digest;
};

struct StageRecord {
  std::string name;
  std::vector<ManifestEntry> artifacts;
};

struct Manifest {
  std::string config_hash;
  /// Supervised shard tasks that exhausted retries (sorted task names,
  /// e.g. "behavior.query.s1"); their stage's artifacts are partial.
  std::vector<std::string> quarantined;
  std::vector<StageRecord> stages;
};

constexpr const char* kManifestFile = "manifest.run";

std::string manifest_payload(const Manifest& manifest) {
  std::string out = "config " + manifest.config_hash + "\n";
  for (const auto& task : manifest.quarantined) {
    out += "quarantined " + task + "\n";
  }
  for (const auto& stage : manifest.stages) {
    out += "stage " + stage.name + " " + std::to_string(stage.artifacts.size()) + "\n";
    for (const auto& entry : stage.artifacts) {
      out += "artifact " + entry.file + " " + entry.digest + "\n";
    }
  }
  return out;
}

Manifest parse_manifest_payload(const std::string& payload, const std::string& path) {
  std::istringstream in{payload};
  Manifest manifest;
  std::string word;
  if (!(in >> word >> manifest.config_hash) || word != "config" ||
      manifest.config_hash.size() != 16) {
    corrupt_payload(path, "manifest: bad config line");
  }
  while (in >> word) {
    if (word == "quarantined") {
      std::string task;
      if (!(in >> task) || !manifest.stages.empty()) {
        corrupt_payload(path, "manifest: bad quarantined line");
      }
      manifest.quarantined.push_back(std::move(task));
      continue;
    }
    if (word != "stage") corrupt_payload(path, "manifest: expected stage record");
    StageRecord record;
    std::size_t count = 0;
    if (!(in >> record.name >> count)) corrupt_payload(path, "manifest: bad stage header");
    for (std::size_t i = 0; i < count; ++i) {
      ManifestEntry entry;
      if (!(in >> word >> entry.file >> entry.digest) || word != "artifact" ||
          entry.digest.size() != 16) {
        corrupt_payload(path, "manifest: bad artifact row");
      }
      record.artifacts.push_back(std::move(entry));
    }
    manifest.stages.push_back(std::move(record));
  }
  return manifest;
}

void save_manifest(const std::string& workdir, const Manifest& manifest) {
  util::save_artifact(join(workdir, kManifestFile), "run-manifest",
                      manifest_payload(manifest));
}

/// Manifest from a previous run, if one exists and validates; nullopt when
/// there is nothing trustworthy to resume from (no manifest yet, torn
/// container, unparseable payload). A manifest that exists but cannot be
/// OPENED — permissions, EIO, a directory where the file should be — is a
/// real input error and propagates as fsio::IoError (filename + errno), so
/// the CLI reports it on exit 3 instead of silently recomputing over a
/// workdir it cannot trust.
std::optional<Manifest> try_load_manifest(const std::string& workdir) {
  const auto path = join(workdir, kManifestFile);
  try {
    return parse_manifest_payload(util::load_artifact(path, "run-manifest"), path);
  } catch (const util::CorruptArtifact& e) {
    util::log_warn() << "run: manifest corrupt (" << e.reason() << "); starting fresh";
    return std::nullopt;
  } catch (const util::fsio::IoError& e) {
    if (e.error_code() == ENOENT) return std::nullopt;  // first run
    throw;
  }
}

// ------------------------------------------------------------ validation

std::string file_digest(const std::string& bytes) {
  return util::hex64(util::xxhash64(bytes));
}

/// A recorded stage is reusable iff its artifact list matches the spec and
/// every file is present, digest-identical, and (for containers) passes
/// full container validation.
bool stage_artifacts_valid(const std::string& workdir, const StageRecord& record,
                           const StageSpec& spec) {
  if (record.artifacts.size() != spec.artifacts.size()) return false;
  for (std::size_t i = 0; i < spec.artifacts.size(); ++i) {
    const auto& want = spec.artifacts[i];
    const auto& have = record.artifacts[i];
    if (have.file != want.file) return false;
    const auto path = join(workdir, want.file);
    std::string bytes;
    try {
      bytes = util::fsio::read_file(path);
    } catch (const util::fsio::IoError&) {
      return false;  // missing or unreadable -> recompute
    }
    if (file_digest(bytes) != have.digest) {
      util::fsio::note_corrupt_detected();
      util::log_warn() << "run: artifact " << path << " digest mismatch; recomputing stage '"
                       << record.name << "'";
      return false;
    }
    if (want.kind != nullptr) {
      try {
        util::validate_artifact_bytes(bytes, want.kind, path);
      } catch (const util::CorruptArtifact& e) {
        util::log_warn() << "run: artifact " << path << " corrupt (" << e.reason()
                         << "); recomputing stage '" << record.name << "'";
        return false;
      }
    }
  }
  return true;
}

// -------------------------------------------------------------- watchdog

/// Arms a deadline timer for one stage. Cancellation is cooperative: the
/// stage driver polls expired() at artifact commits and substep boundaries
/// (atomic artifact writes mean cancellation never leaves torn files).
class StageWatchdog {
 public:
  StageWatchdog(const char* stage, double seconds) : stage_{stage} {
    if (seconds <= 0.0) return;
    const auto budget = std::chrono::duration<double>{seconds};
    timer_ = std::thread{[this, budget] {
      std::unique_lock lock{mutex_};
      if (!cv_.wait_for(lock, budget, [this] { return disarmed_; })) {
        expired_.store(true, std::memory_order_relaxed);
      }
    }};
  }

  ~StageWatchdog() {
    {
      std::lock_guard lock{mutex_};
      disarmed_ = true;
    }
    cv_.notify_all();
    if (timer_.joinable()) timer_.join();
  }

  void check() const {
    if (expired_.load(std::memory_order_relaxed)) throw StageDeadlineExceeded{stage_};
  }

  /// Test hook: make the next check() throw, exactly as if the timer had
  /// fired — a deterministic mid-stage deadline for the resumability
  /// regression test.
  void force_expire() noexcept { expired_.store(true, std::memory_order_relaxed); }

 private:
  std::string stage_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::atomic<bool> expired_{false};
  std::thread timer_;
};

// ---------------------------------------------------------- stage driver

class StageDriver {
 public:
  StageDriver(const RunOptions& options, Manifest manifest)
      : options_{options}, manifest_{std::move(manifest)} {}

  /// Record a just-committed artifact's digest, fire the test hooks, and
  /// poll the deadline.
  void committed(const char* file, StageWatchdog& watchdog) {
    const auto path = join(options_.workdir, file);
    pending_.push_back({file, file_digest(util::fsio::read_file(path))});
    if (!options_.crash_after_artifact.empty() && options_.crash_after_artifact == file) {
      util::log_warn() << "run: crash hook firing after " << file;
      std::_Exit(137);
    }
    if (!options_.expire_deadline_after_artifact.empty() &&
        options_.expire_deadline_after_artifact == file) {
      util::log_warn() << "run: deadline hook firing after " << file;
      watchdog.force_expire();
    }
    watchdog.check();
  }

  /// Run or skip one stage. `body` receives (watchdog) and must commit every
  /// artifact in the stage's spec via committed().
  void stage(const StageSpec& spec, RunSummary& summary,
             const std::function<void(StageWatchdog&)>& body) {
    util::Stopwatch watch;
    if (const auto* record = reusable_record(spec.name)) {
      if (stage_artifacts_valid(options_.workdir, *record, spec)) {
        obs::metrics().counter("pipeline.stage.resumed").add(1);
        ++summary.resumed_stages;
        summary.stages.push_back({spec.name, true, watch.seconds()});
        util::log_info() << "run: stage '" << spec.name << "' resumed from artifacts";
        completed_.push_back(*record);
        // A resumed stage carries its quarantine flags forward: the
        // partial artifacts are being reused as-is, so the report stays
        // flagged until the stage is actually recomputed.
        for (const auto& task : manifest_.quarantined) {
          if (task.rfind(std::string{spec.name} + ".", 0) == 0) {
            quarantined_.push_back(task);
          }
        }
        return;
      }
    }
    obs::StageSpan span{std::string{"run."} + spec.name};
    StageWatchdog watchdog{spec.name, options_.stage_deadline_seconds};
    watchdog.check();
    pending_.clear();
    try {
      body(watchdog);
    } catch (...) {
      // Mid-stage abort (deadline, I/O failure, supervisor giving up):
      // persist the completed-stage prefix so the on-disk manifest always
      // matches this run's config and exactly the stages that finished —
      // a later --resume then trusts precisely what this run produced and
      // recomputes only the stage that was in flight. Best-effort: if even
      // the manifest cannot be written, the original error wins.
      try {
        save_manifest(options_.workdir, {config_hash(), quarantined_, completed_});
      } catch (...) {
      }
      throw;
    }
    completed_.push_back({spec.name, std::move(pending_)});
    pending_ = {};
    // Rewrite the manifest after every stage: a crash between stages loses
    // at most the stage in flight.
    save_manifest(options_.workdir, {config_hash(), quarantined_, completed_});
    summary.stages.push_back({spec.name, false, watch.seconds()});
    util::log_info() << "run: stage '" << spec.name << "' completed in " << watch.seconds()
                     << "s";
  }

  std::string config_hash() const { return hash_pipeline_config(options_.config); }

  /// Record shard tasks quarantined by the supervisor during the current
  /// stage; they appear in every manifest written from now on.
  void add_quarantined(const std::vector<std::string>& tasks) {
    quarantined_.insert(quarantined_.end(), tasks.begin(), tasks.end());
    std::sort(quarantined_.begin(), quarantined_.end());
  }

  const std::vector<std::string>& quarantined() const noexcept { return quarantined_; }

 private:
  /// The previous run's record for this stage, when resume applies to it.
  const StageRecord* reusable_record(const char* name) const {
    if (!options_.resume) return nullptr;
    if (manifest_.config_hash != config_hash()) return nullptr;
    // Stages are only reusable in prefix order behind already-valid ones:
    // a recomputed earlier stage is deterministic, so identical artifacts
    // keep later digests valid — but a *failed* validation earlier means
    // later stages were built from inputs we no longer trust.
    const std::size_t position = completed_.size();
    if (position >= manifest_.stages.size()) return nullptr;
    if (manifest_.stages[position].name != name) return nullptr;
    for (std::size_t i = 0; i < position; ++i) {
      if (completed_[i].name != manifest_.stages[i].name ||
          !equal_entries(completed_[i].artifacts, manifest_.stages[i].artifacts)) {
        return nullptr;
      }
    }
    return &manifest_.stages[position];
  }

  static bool equal_entries(const std::vector<ManifestEntry>& a,
                            const std::vector<ManifestEntry>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].file != b[i].file || a[i].digest != b[i].digest) return false;
    }
    return true;
  }

  const RunOptions& options_;
  Manifest manifest_;                  // from the previous run (may be empty)
  std::vector<StageRecord> completed_; // this run, in order
  std::vector<ManifestEntry> pending_; // artifacts of the stage in flight
  std::vector<std::string> quarantined_;  // sorted quarantined task names
};

// ------------------------------------------------- supervised stage work

/// One projection channel of the behavior stage.
struct ChannelSpec {
  const char* name;        // task-name component ("behavior.<name>.s<k>")
  const char* input;       // bipartite input artifact
  const char* final_file;  // merged similarity CSR artifact
};

constexpr ChannelSpec kChannels[] = {
    {"query", "hdbg.bg", "query_sim.csr"},
    {"ip", "dibg.bg", "ip_sim.csr"},
    {"temporal", "dtbg.bg", "temporal_sim.csr"},
};

/// The channel's bipartite graph after the paper's pruning rules — exactly
/// the graph build_behavior_model projects. Each shard worker recomputes
/// this independently from the trace artifacts (workers share no memory);
/// the pruning is deterministic, so every shard filters the identical
/// vertex set.
graph::BipartiteGraph pruned_channel_graph(const std::string& workdir,
                                           const ChannelSpec& channel,
                                           const PipelineConfig& config) {
  auto hdbg = graph::load_bipartite_file(join(workdir, "hdbg.bg"));
  const auto keep_mask = graph::right_degree_keep_mask(hdbg, config.behavior.prune);
  if (std::string_view{channel.name} == "query") return hdbg.filter_right(keep_mask);
  std::unordered_set<std::string> kept;
  for (graph::VertexId r = 0; r < hdbg.right_count(); ++r) {
    if (keep_mask[r]) kept.insert(hdbg.right_names().name(r));
  }
  auto g = graph::load_bipartite_file(join(workdir, channel.input));
  std::vector<bool> mask(g.right_count(), false);
  for (graph::VertexId r = 0; r < g.right_count(); ++r) {
    mask[r] = kept.contains(g.right_names().name(r));
  }
  return g.filter_right(mask);
}

/// The channel's projection options with the run-level knobs applied, as
/// the in-process path does in its behavior stage.
graph::ProjectionOptions channel_projection(const PipelineConfig& config,
                                            const ChannelSpec& channel) {
  const std::string_view name{channel.name};
  graph::ProjectionOptions proj = name == "query" ? config.behavior.query_projection
                                  : name == "ip" ? config.behavior.ip_projection
                                                 : config.behavior.temporal_projection;
  proj.threads = config.projection_threads;
  proj.mode = config.projection_mode;
  proj.sketch = config.sketch;
  return proj;
}

/// Deterministic size-aware merge of per-shard partial projections into the
/// channel's final CSR. Shards partition the PAIR space disjointly and each
/// emits exact similarities over the full vertex set, so the merged edge
/// list is the concatenation (reserved to total size up front), and one
/// global (u, v) sort reproduces the exact emission order of an unsharded
/// projection — the merged artifact is byte-identical to a single-process
/// run. Quarantined shards are simply absent: their pairs are missing and
/// the report is flagged as partial.
void merge_channel_shards(const std::string& workdir, const ChannelSpec& channel,
                          const PipelineConfig& config,
                          const std::vector<std::string>& partial_paths) {
  std::vector<graph::WeightedGraph> parts;
  parts.reserve(partial_paths.size());
  std::size_t total = 0;
  for (const auto& partial : partial_paths) {
    parts.push_back(graph::from_csr(graph::load_csr_file(partial)));
    total += parts.back().edge_count();
  }
  std::vector<graph::WeightedEdge> edges;
  edges.reserve(total);
  for (const auto& part : parts) {
    const auto span = part.edges();
    edges.insert(edges.end(), span.begin(), span.end());
  }
  std::sort(edges.begin(), edges.end(), [](const graph::WeightedEdge& a,
                                           const graph::WeightedEdge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });

  graph::WeightedGraph merged;
  if (!parts.empty()) {
    // Every partial carries the full vertex set in identical id order.
    const auto& names = parts.front().names();
    for (graph::VertexId v = 0; v < parts.front().vertex_count(); ++v) {
      merged.add_vertex(names.name(v));
    }
  } else {
    // All shards quarantined: an edgeless graph over the pruned vertex set
    // keeps downstream stages well-formed (isolated vertices are legal).
    const auto pruned = pruned_channel_graph(workdir, channel, config);
    for (graph::VertexId r = 0; r < pruned.right_count(); ++r) {
      merged.add_vertex(pruned.right_names().name(r));
    }
  }
  for (const auto& e : edges) merged.add_edge_unchecked(e.u, e.v, e.weight);
  graph::save_csr_file(join(workdir, channel.final_file), merged);
}

/// Labels-stage work, shared by the in-process path and the worker child.
void write_labels_file(const std::string& workdir, const PipelineConfig& config,
                       const std::function<void()>& checkpoint) {
  const auto truth = trace::load_ground_truth_file(join(workdir, "truth.gt"));
  const auto kept =
      parse_domain_list(util::load_artifact(join(workdir, "kept.domains"), "domain-list"),
                        join(workdir, "kept.domains"));
  checkpoint();
  const intel::VirusTotalSim vt{truth, config.virustotal};
  intel::save_labeled_file(join(workdir, "labeled.set"),
                           intel::build_labeled_set(kept, truth, vt, config.labeling));
}

/// Report-stage work, shared by the in-process path and the worker child.
/// `quarantined` non-empty appends a degraded-run section, so a clean
/// supervised run emits byte-identical bytes to the single-process path.
void write_report_file(const std::string& workdir, const PipelineConfig& config,
                       const std::vector<std::string>& quarantined,
                       const std::function<void()>& checkpoint) {
  const auto path = [&](const char* file) { return join(workdir, file); };
  PipelineResult result;
  result.trace.truth = trace::load_ground_truth_file(path("truth.gt"));
  const auto stats = parse_trace_stats(
      util::load_artifact(path("trace.stats"), "trace-stats"), path("trace.stats"));
  result.trace.dns_events = stats.dns_events;
  result.trace.nxdomain_events = stats.nxdomain_events;
  result.trace.flow_events = stats.flow_events;
  result.model.kept_domains = parse_domain_list(
      util::load_artifact(path("kept.domains"), "domain-list"), path("kept.domains"));
  result.model.query_similarity = graph::from_csr(graph::load_csr_file(path("query_sim.csr")));
  result.model.ip_similarity = graph::from_csr(graph::load_csr_file(path("ip_sim.csr")));
  result.model.temporal_similarity =
      graph::from_csr(graph::load_csr_file(path("temporal_sim.csr")));
  result.query_embedding = embed::EmbeddingMatrix::load_arena_file(path("query.emb"));
  result.ip_embedding = embed::EmbeddingMatrix::load_arena_file(path("ip.emb"));
  result.temporal_embedding = embed::EmbeddingMatrix::load_arena_file(path("temporal.emb"));
  result.combined_embedding = embed::EmbeddingMatrix::load_arena_file(path("combined.emb"));
  result.labels = intel::load_labeled_file(path("labeled.set"));
  checkpoint();

  const auto evals = evaluate_channels(result, config);
  checkpoint();
  const auto clusters = cluster_domains(result.combined_embedding, result.model.kept_domains,
                                        result.trace.truth, config.xmeans);
  checkpoint();
  std::ostringstream report;
  write_detection_report(report, result, evals, clusters);
  if (!quarantined.empty()) {
    report << "\n## Degraded run\n\n"
           << quarantined.size()
           << " shard task(s) exhausted their retry budget and were quarantined; the "
              "similarity graphs and everything derived from them are partial:\n\n";
    for (const auto& task : quarantined) report << "- `" << task << "`\n";
  }
  util::fsio::atomic_write_file(path("report.md"), report.str());
}

}  // namespace

// ---------------------------------------------------------- config hash

std::string hash_pipeline_config(const PipelineConfig& config) {
  std::ostringstream out;
  out.precision(17);
  out << "run-config 3";
  out << " trace=" << config.trace.seed << ',' << config.trace.campaign_seed << ','
      << config.trace.hosts << ',' << config.trace.days << ',' << config.trace.benign_sites
      << ',' << config.trace.malware_families;
  // Adversarial-scenario knobs change the emitted trace, so they must
  // invalidate resumed stages exactly like the base trace shape does.
  out << " adv=" << config.trace.zero_day_families << ','
      << config.trace.zero_day_activation_day << ',' << config.trace.zero_day_ip_reuse_fraction
      << ',' << config.trace.evasion_families << ',' << config.trace.evasion_mimicry_rate << ','
      << config.trace.evasion_cover_sites << ',' << config.trace.iot_host_fraction << ','
      << config.trace.iot_vendor_domains << ',' << config.trace.iot_burst_period_hours;
  out << " prune=" << config.behavior.prune.min_left_degree << ','
      << config.behavior.prune.max_left_fraction;
  out << " proj=" << config.behavior.query_projection.min_similarity << ','
      << config.behavior.ip_projection.min_similarity << ','
      << config.behavior.temporal_projection.min_similarity;
  // The backend and sketch parameters change which edges the similarity
  // graphs contain, so a mode/parameter switch must invalidate resumed
  // stages (projection_threads, by contrast, is output-neutral).
  out << " projmode=" << static_cast<int>(config.projection_mode) << ','
      << config.sketch.signature_size << ',' << config.sketch.bands << ','
      << config.sketch.bits << ',' << config.sketch.top_k << ',' << config.sketch.seed;
  out << " embed=" << static_cast<int>(config.embedding.method) << ','
      << config.embedding_dimension << ',' << config.embedding.line.total_samples << ','
      << config.seed;
  out << " labeling=" << config.labeling.malicious_fraction << ',' << config.labeling.seed;
  out << " svm=" << static_cast<int>(config.svm.kernel) << ',' << config.svm.c << ','
      << config.svm.gamma << ',' << config.kfold;
  out << " xmeans=" << config.xmeans.k_min << ',' << config.xmeans.k_max << ','
      << config.xmeans.seed;
  return util::hex64(util::xxhash64(out.str()));
}

// ------------------------------------------------------------------ run

RunSummary run_resumable(const RunOptions& options) {
  if (options.workdir.empty()) throw std::invalid_argument{"run_resumable: empty workdir"};
  obs::StageSpan run_span{"run.pipeline"};
  util::fsio::create_directories(options.workdir);

  Manifest previous;
  if (options.resume) {
    if (auto loaded = try_load_manifest(options.workdir)) previous = std::move(*loaded);
  }
  StageDriver driver{options, std::move(previous)};
  const auto& specs = stage_specs();
  const auto path = [&](const char* file) { return join(options.workdir, file); };

  RunSummary summary;
  summary.report_path = path("report.md");
  const PipelineConfig& config = options.config;

  const bool supervised = options.supervise.workers > 0;
  std::optional<Supervisor> supervisor;
  if (supervised) {
    supervisor.emplace(options.workdir, options.supervise);
    supervisor->reset_scratch(driver.config_hash(), options.resume);
  }
  /// Commit every artifact of a supervised stage, in spec order (the
  /// supervisor already validated the workers' output containers).
  const auto commit_all = [&](const StageSpec& spec, StageWatchdog& watchdog) {
    for (const auto& artifact : spec.artifacts) driver.committed(artifact.file, watchdog);
  };
  const auto poll_for = [](StageWatchdog& watchdog) {
    return [&watchdog] { watchdog.check(); };
  };

  // trace: synthesize the campus capture into the three bipartite graphs
  // plus the ground-truth registry.
  driver.stage(specs[0], summary, [&](StageWatchdog& watchdog) {
    if (supervised) {
      WorkerTask task;
      task.name = "trace";
      for (const auto& artifact : specs[0].artifacts) {
        task.outputs.push_back({path(artifact.file), artifact.kind});
      }
      task.body = [&path, &config] {
        GraphBuilderSink graphs;
        const auto trace_result = trace::generate_trace(config.trace, graphs);
        graph::save_bipartite_file(path("hdbg.bg"), graphs.take_hdbg());
        graph::save_bipartite_file(path("dibg.bg"), graphs.take_dibg());
        graph::save_bipartite_file(path("dtbg.bg"), graphs.take_dtbg());
        trace::save_ground_truth_file(path("truth.gt"), trace_result.truth);
        util::save_artifact(path("trace.stats"), "trace-stats",
                            trace_stats_payload({trace_result.dns_events,
                                                 trace_result.nxdomain_events,
                                                 trace_result.flow_events}));
      };
      supervisor->run_tasks({task}, poll_for(watchdog));
      commit_all(specs[0], watchdog);
      return;
    }
    GraphBuilderSink graphs;
    const auto trace_result = trace::generate_trace(config.trace, graphs);
    watchdog.check();
    graph::save_bipartite_file(path("hdbg.bg"), graphs.take_hdbg());
    driver.committed("hdbg.bg", watchdog);
    graph::save_bipartite_file(path("dibg.bg"), graphs.take_dibg());
    driver.committed("dibg.bg", watchdog);
    graph::save_bipartite_file(path("dtbg.bg"), graphs.take_dtbg());
    driver.committed("dtbg.bg", watchdog);
    trace::save_ground_truth_file(path("truth.gt"), trace_result.truth);
    driver.committed("truth.gt", watchdog);
    util::save_artifact(path("trace.stats"), "trace-stats",
                        trace_stats_payload({trace_result.dns_events,
                                             trace_result.nxdomain_events,
                                             trace_result.flow_events}));
    driver.committed("trace.stats", watchdog);
  });

  // behavior: prune + project the reloaded bipartite graphs. Supervised,
  // the projection fans out as pair-hash shard tasks per channel whose
  // partial CSRs the parent merges deterministically; quarantined shards
  // leave their pairs out and flag the run.
  driver.stage(specs[1], summary, [&](StageWatchdog& watchdog) {
    if (supervised) {
      const std::size_t shard_count =
          config.projection_mode == graph::ProjectionMode::kSketched
              ? 1
              : std::max<std::size_t>(1, options.supervise.projection_shards);
      std::vector<WorkerTask> tasks;
      {
        WorkerTask prune;
        prune.name = "behavior.prune";
        prune.outputs.push_back({path("kept.domains"), "domain-list"});
        prune.body = [&options, &path, &config] {
          const auto pruned = pruned_channel_graph(options.workdir, kChannels[0], config);
          std::vector<std::string> kept;
          kept.reserve(pruned.right_count());
          for (graph::VertexId r = 0; r < pruned.right_count(); ++r) {
            kept.push_back(pruned.right_names().name(r));
          }
          util::save_artifact(path("kept.domains"), "domain-list",
                              domain_list_payload(kept));
        };
        tasks.push_back(std::move(prune));
      }
      for (const auto& channel : kChannels) {
        for (std::size_t s = 0; s < shard_count; ++s) {
          WorkerTask task;
          task.name = std::string{"behavior."} + channel.name + ".s" + std::to_string(s);
          task.quarantinable = true;
          task.reusable = true;
          const auto partial = supervisor->scratch_path(std::string{channel.name} + ".s" +
                                                        std::to_string(s) + ".csr");
          task.outputs.push_back({partial, "csr-graph"});
          task.body = [&options, &config, channel, s, shard_count, partial] {
            auto proj = channel_projection(config, channel);
            proj.pair_shard_index = s;
            proj.pair_shard_count = shard_count;
            const auto pruned = pruned_channel_graph(options.workdir, channel, config);
            graph::save_csr_file(partial, graph::project_right(pruned, proj));
          };
          tasks.push_back(std::move(task));
        }
      }
      const std::size_t quarantined_before = supervisor->stats().quarantined.size();
      supervisor->run_tasks(tasks, poll_for(watchdog));
      const auto& all_quarantined = supervisor->stats().quarantined;
      driver.add_quarantined({all_quarantined.begin() +
                                  static_cast<std::ptrdiff_t>(quarantined_before),
                              all_quarantined.end()});
      const std::unordered_set<std::string> quarantined(all_quarantined.begin(),
                                                        all_quarantined.end());
      for (const auto& channel : kChannels) {
        std::vector<std::string> partials;
        for (std::size_t s = 0; s < shard_count; ++s) {
          const auto name =
              std::string{"behavior."} + channel.name + ".s" + std::to_string(s);
          if (!quarantined.contains(name)) {
            partials.push_back(supervisor->scratch_path(std::string{channel.name} + ".s" +
                                                        std::to_string(s) + ".csr"));
          }
        }
        merge_channel_shards(options.workdir, channel, config, partials);
      }
      commit_all(specs[1], watchdog);
      return;
    }
    auto hdbg = graph::load_bipartite_file(path("hdbg.bg"));
    auto dibg = graph::load_bipartite_file(path("dibg.bg"));
    auto dtbg = graph::load_bipartite_file(path("dtbg.bg"));
    watchdog.check();
    BehaviorModelConfig behavior = config.behavior;
    for (auto* proj : {&behavior.query_projection, &behavior.ip_projection,
                       &behavior.temporal_projection}) {
      proj->threads = config.projection_threads;
      proj->mode = config.projection_mode;
      proj->sketch = config.sketch;
    }
    auto model =
        build_behavior_model(std::move(hdbg), std::move(dibg), std::move(dtbg), behavior);
    watchdog.check();
    util::save_artifact(path("kept.domains"), "domain-list",
                        domain_list_payload(model.kept_domains));
    driver.committed("kept.domains", watchdog);
    graph::save_csr_file(path("query_sim.csr"), model.query_similarity);
    driver.committed("query_sim.csr", watchdog);
    graph::save_csr_file(path("ip_sim.csr"), model.ip_similarity);
    driver.committed("ip_sim.csr", watchdog);
    graph::save_csr_file(path("temporal_sim.csr"), model.temporal_similarity);
    driver.committed("temporal_sim.csr", watchdog);
  });

  // embed: one embedding per similarity graph (seed, seed+1, seed+2 as in
  // run_pipeline), then the concatenated vector. The CSR graphs are
  // memory-mapped, not parsed: LINE's edge sampler reads the mapped
  // sections in place. Supervised, each channel trains in its own worker
  // (LINE is bit-deterministic at any thread count, so worker placement
  // cannot change the arenas) and the parent concatenates.
  driver.stage(specs[2], summary, [&](StageWatchdog& watchdog) {
    if (supervised) {
      struct EmbedTaskSpec {
        const char* channel;
        const char* csr;
        const char* arena;
        std::uint64_t seed_offset;
      };
      static constexpr EmbedTaskSpec kEmbeds[] = {
          {"query", "query_sim.csr", "query.emb", 0},
          {"ip", "ip_sim.csr", "ip.emb", 1},
          {"temporal", "temporal_sim.csr", "temporal.emb", 2},
      };
      std::vector<WorkerTask> tasks;
      for (const auto& spec : kEmbeds) {
        WorkerTask task;
        task.name = std::string{"embed."} + spec.channel;
        task.outputs.push_back({path(spec.arena), "embedding-arena"});
        task.body = [&path, &config, spec] {
          embed::EmbedConfig embed_config = config.embedding;
          embed_config.dimension = config.embedding_dimension;
          embed_config.seed = config.seed + spec.seed_offset;
          embed::embed_graph(graph::load_csr_file(path(spec.csr)), embed_config)
              .save_arena_file(path(spec.arena));
        };
        tasks.push_back(std::move(task));
      }
      supervisor->run_tasks(tasks, poll_for(watchdog));
      const auto kept = parse_domain_list(
          util::load_artifact(path("kept.domains"), "domain-list"), path("kept.domains"));
      const auto query = embed::EmbeddingMatrix::load_arena_file(path("query.emb"));
      const auto ip = embed::EmbeddingMatrix::load_arena_file(path("ip.emb"));
      const auto temporal = embed::EmbeddingMatrix::load_arena_file(path("temporal.emb"));
      embed::EmbeddingMatrix::concat(kept, {&query, &ip, &temporal})
          .save_arena_file(path("combined.emb"));
      commit_all(specs[2], watchdog);
      return;
    }
    const auto kept = parse_domain_list(
        util::load_artifact(path("kept.domains"), "domain-list"), path("kept.domains"));
    embed::EmbedConfig embed_config = config.embedding;
    embed_config.dimension = config.embedding_dimension;

    embed_config.seed = config.seed;
    const auto query =
        embed::embed_graph(graph::load_csr_file(path("query_sim.csr")), embed_config);
    query.save_arena_file(path("query.emb"));
    driver.committed("query.emb", watchdog);

    embed_config.seed = config.seed + 1;
    const auto ip =
        embed::embed_graph(graph::load_csr_file(path("ip_sim.csr")), embed_config);
    ip.save_arena_file(path("ip.emb"));
    driver.committed("ip.emb", watchdog);

    embed_config.seed = config.seed + 2;
    const auto temporal =
        embed::embed_graph(graph::load_csr_file(path("temporal_sim.csr")), embed_config);
    temporal.save_arena_file(path("temporal.emb"));
    driver.committed("temporal.emb", watchdog);

    embed::EmbeddingMatrix::concat(kept, {&query, &ip, &temporal})
        .save_arena_file(path("combined.emb"));
    driver.committed("combined.emb", watchdog);
  });

  // labels: ground truth + simulated VirusTotal over the kept domains.
  driver.stage(specs[3], summary, [&](StageWatchdog& watchdog) {
    if (supervised) {
      WorkerTask task;
      task.name = "labels";
      task.outputs.push_back({path("labeled.set"), "labeled-set"});
      task.body = [&options, &config] {
        write_labels_file(options.workdir, config, [] {});
      };
      supervisor->run_tasks({task}, poll_for(watchdog));
      commit_all(specs[3], watchdog);
      return;
    }
    write_labels_file(options.workdir, config, [&watchdog] { watchdog.check(); });
    driver.committed("labeled.set", watchdog);
  });

  // report: per-channel SVM evaluation + clustering over the persisted
  // artifacts only (nothing carried in memory from earlier stages).
  driver.stage(specs[4], summary, [&](StageWatchdog& watchdog) {
    if (supervised) {
      WorkerTask task;
      task.name = "report";
      task.outputs.push_back({path("report.md"), nullptr});
      // The quarantine list is final here: the behavior stage (the only
      // producer of quarantinable tasks) completed before this stage.
      task.body = [&options, &config, quarantined = driver.quarantined()] {
        write_report_file(options.workdir, config, quarantined, [] {});
      };
      supervisor->run_tasks({task}, poll_for(watchdog));
      commit_all(specs[4], watchdog);
      return;
    }
    write_report_file(options.workdir, config, driver.quarantined(),
                      [&watchdog] { watchdog.check(); });
    driver.committed("report.md", watchdog);
  });

  if (supervisor) summary.supervision = supervisor->stats();
  summary.quarantined = driver.quarantined();
  return summary;
}

}  // namespace dnsembed::core
