#include "core/run.hpp"

#include <charconv>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "core/behavior.hpp"
#include "core/clustering.hpp"
#include "core/report.hpp"
#include "graph/io.hpp"
#include "intel/labels.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "trace/generator.hpp"
#include "util/artifact.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace dnsembed::core {

StageDeadlineExceeded::StageDeadlineExceeded(std::string stage)
    : std::runtime_error{"stage '" + stage + "' exceeded its deadline"},
      stage_{std::move(stage)} {}

namespace {

// ---------------------------------------------------------------- layout

/// Artifact files per stage. kind == nullptr marks a raw (non-container)
/// file whose digest is still tracked in the manifest (the report).
struct ArtifactSpec {
  const char* file;
  const char* kind;
};

struct StageSpec {
  const char* name;
  std::vector<ArtifactSpec> artifacts;
};

const std::vector<StageSpec>& stage_specs() {
  static const std::vector<StageSpec> specs{
      {"trace",
       {{"hdbg.bg", "bipartite-graph"},
        {"dibg.bg", "bipartite-graph"},
        {"dtbg.bg", "bipartite-graph"},
        {"truth.gt", "ground-truth"},
        {"trace.stats", "trace-stats"}}},
      {"behavior",
       {{"kept.domains", "domain-list"},
        {"query_sim.csr", "csr-graph"},
        {"ip_sim.csr", "csr-graph"},
        {"temporal_sim.csr", "csr-graph"}}},
      {"embed",
       {{"query.emb", "embedding-arena"},
        {"ip.emb", "embedding-arena"},
        {"temporal.emb", "embedding-arena"},
        {"combined.emb", "embedding-arena"}}},
      {"labels", {{"labeled.set", "labeled-set"}}},
      {"report", {{"report.md", nullptr}}},
  };
  return specs;
}

std::string join(const std::string& dir, const char* file) { return dir + "/" + file; }

// ------------------------------------------------------- small payloads

struct TraceStats {
  std::size_t dns_events = 0;
  std::size_t nxdomain_events = 0;
  std::size_t flow_events = 0;
};

std::string trace_stats_payload(const TraceStats& stats) {
  std::ostringstream out;
  out << "dns_events " << stats.dns_events << "\nnxdomain_events " << stats.nxdomain_events
      << "\nflow_events " << stats.flow_events << "\n";
  return out.str();
}

[[noreturn]] void corrupt_payload(const std::string& path, std::string reason) {
  util::fsio::note_corrupt_detected();
  throw util::CorruptArtifact{path, std::move(reason)};
}

TraceStats parse_trace_stats(const std::string& payload, const std::string& path) {
  std::istringstream in{payload};
  TraceStats stats;
  std::string key;
  if (!(in >> key >> stats.dns_events) || key != "dns_events") {
    corrupt_payload(path, "trace-stats: bad dns_events");
  }
  if (!(in >> key >> stats.nxdomain_events) || key != "nxdomain_events") {
    corrupt_payload(path, "trace-stats: bad nxdomain_events");
  }
  if (!(in >> key >> stats.flow_events) || key != "flow_events") {
    corrupt_payload(path, "trace-stats: bad flow_events");
  }
  return stats;
}

std::string domain_list_payload(const std::vector<std::string>& domains) {
  std::string out = "domains " + std::to_string(domains.size()) + "\n";
  for (const auto& domain : domains) {
    out += domain;
    out += '\n';
  }
  return out;
}

std::vector<std::string> parse_domain_list(const std::string& payload, const std::string& path) {
  std::istringstream in{payload};
  std::string key;
  std::size_t count = 0;
  if (!(in >> key >> count) || key != "domains") {
    corrupt_payload(path, "domain-list: bad header");
  }
  std::vector<std::string> out;
  out.reserve(count);
  std::string domain;
  for (std::size_t i = 0; i < count; ++i) {
    if (!(in >> domain)) corrupt_payload(path, "domain-list: truncated");
    out.push_back(domain);
  }
  return out;
}

// -------------------------------------------------------------- manifest

struct ManifestEntry {
  std::string file;
  std::string digest;
};

struct StageRecord {
  std::string name;
  std::vector<ManifestEntry> artifacts;
};

struct Manifest {
  std::string config_hash;
  std::vector<StageRecord> stages;
};

constexpr const char* kManifestFile = "manifest.run";

std::string manifest_payload(const Manifest& manifest) {
  std::string out = "config " + manifest.config_hash + "\n";
  for (const auto& stage : manifest.stages) {
    out += "stage " + stage.name + " " + std::to_string(stage.artifacts.size()) + "\n";
    for (const auto& entry : stage.artifacts) {
      out += "artifact " + entry.file + " " + entry.digest + "\n";
    }
  }
  return out;
}

Manifest parse_manifest_payload(const std::string& payload, const std::string& path) {
  std::istringstream in{payload};
  Manifest manifest;
  std::string word;
  if (!(in >> word >> manifest.config_hash) || word != "config" ||
      manifest.config_hash.size() != 16) {
    corrupt_payload(path, "manifest: bad config line");
  }
  while (in >> word) {
    if (word != "stage") corrupt_payload(path, "manifest: expected stage record");
    StageRecord record;
    std::size_t count = 0;
    if (!(in >> record.name >> count)) corrupt_payload(path, "manifest: bad stage header");
    for (std::size_t i = 0; i < count; ++i) {
      ManifestEntry entry;
      if (!(in >> word >> entry.file >> entry.digest) || word != "artifact" ||
          entry.digest.size() != 16) {
        corrupt_payload(path, "manifest: bad artifact row");
      }
      record.artifacts.push_back(std::move(entry));
    }
    manifest.stages.push_back(std::move(record));
  }
  return manifest;
}

void save_manifest(const std::string& workdir, const Manifest& manifest) {
  util::save_artifact(join(workdir, kManifestFile), "run-manifest",
                      manifest_payload(manifest));
}

/// Manifest from a previous run, if one exists and validates; nullopt
/// otherwise (missing file, torn container, unparseable payload — all mean
/// "nothing trustworthy to resume from", never a fatal error).
std::optional<Manifest> try_load_manifest(const std::string& workdir) {
  const auto path = join(workdir, kManifestFile);
  try {
    return parse_manifest_payload(util::load_artifact(path, "run-manifest"), path);
  } catch (const util::CorruptArtifact& e) {
    util::log_warn() << "run: manifest corrupt (" << e.reason() << "); starting fresh";
    return std::nullopt;
  } catch (const util::fsio::IoError&) {
    return std::nullopt;  // typically ENOENT on a first run
  }
}

// ------------------------------------------------------------ validation

std::string file_digest(const std::string& bytes) {
  return util::hex64(util::xxhash64(bytes));
}

/// A recorded stage is reusable iff its artifact list matches the spec and
/// every file is present, digest-identical, and (for containers) passes
/// full container validation.
bool stage_artifacts_valid(const std::string& workdir, const StageRecord& record,
                           const StageSpec& spec) {
  if (record.artifacts.size() != spec.artifacts.size()) return false;
  for (std::size_t i = 0; i < spec.artifacts.size(); ++i) {
    const auto& want = spec.artifacts[i];
    const auto& have = record.artifacts[i];
    if (have.file != want.file) return false;
    const auto path = join(workdir, want.file);
    std::string bytes;
    try {
      bytes = util::fsio::read_file(path);
    } catch (const util::fsio::IoError&) {
      return false;  // missing or unreadable -> recompute
    }
    if (file_digest(bytes) != have.digest) {
      util::fsio::note_corrupt_detected();
      util::log_warn() << "run: artifact " << path << " digest mismatch; recomputing stage '"
                       << record.name << "'";
      return false;
    }
    if (want.kind != nullptr) {
      try {
        util::validate_artifact_bytes(bytes, want.kind, path);
      } catch (const util::CorruptArtifact& e) {
        util::log_warn() << "run: artifact " << path << " corrupt (" << e.reason()
                         << "); recomputing stage '" << record.name << "'";
        return false;
      }
    }
  }
  return true;
}

// -------------------------------------------------------------- watchdog

/// Arms a deadline timer for one stage. Cancellation is cooperative: the
/// stage driver polls expired() at artifact commits and substep boundaries
/// (atomic artifact writes mean cancellation never leaves torn files).
class StageWatchdog {
 public:
  StageWatchdog(const char* stage, double seconds) : stage_{stage} {
    if (seconds <= 0.0) return;
    const auto budget = std::chrono::duration<double>{seconds};
    timer_ = std::thread{[this, budget] {
      std::unique_lock lock{mutex_};
      if (!cv_.wait_for(lock, budget, [this] { return disarmed_; })) {
        expired_.store(true, std::memory_order_relaxed);
      }
    }};
  }

  ~StageWatchdog() {
    {
      std::lock_guard lock{mutex_};
      disarmed_ = true;
    }
    cv_.notify_all();
    if (timer_.joinable()) timer_.join();
  }

  void check() const {
    if (expired_.load(std::memory_order_relaxed)) throw StageDeadlineExceeded{stage_};
  }

 private:
  std::string stage_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::atomic<bool> expired_{false};
  std::thread timer_;
};

// ---------------------------------------------------------- stage driver

class StageDriver {
 public:
  StageDriver(const RunOptions& options, Manifest manifest)
      : options_{options}, manifest_{std::move(manifest)} {}

  /// Record a just-committed artifact's digest, fire the crash hook, and
  /// poll the deadline.
  void committed(const char* file, const StageWatchdog& watchdog) {
    const auto path = join(options_.workdir, file);
    pending_.push_back({file, file_digest(util::fsio::read_file(path))});
    if (!options_.crash_after_artifact.empty() && options_.crash_after_artifact == file) {
      util::log_warn() << "run: crash hook firing after " << file;
      std::_Exit(137);
    }
    watchdog.check();
  }

  /// Run or skip one stage. `body` receives (watchdog) and must commit every
  /// artifact in the stage's spec via committed().
  void stage(const StageSpec& spec, RunSummary& summary,
             const std::function<void(const StageWatchdog&)>& body) {
    util::Stopwatch watch;
    if (const auto* record = reusable_record(spec.name)) {
      if (stage_artifacts_valid(options_.workdir, *record, spec)) {
        obs::metrics().counter("pipeline.stage.resumed").add(1);
        ++summary.resumed_stages;
        summary.stages.push_back({spec.name, true, watch.seconds()});
        util::log_info() << "run: stage '" << spec.name << "' resumed from artifacts";
        completed_.push_back(*record);
        return;
      }
    }
    obs::StageSpan span{std::string{"run."} + spec.name};
    StageWatchdog watchdog{spec.name, options_.stage_deadline_seconds};
    watchdog.check();
    pending_.clear();
    body(watchdog);
    completed_.push_back({spec.name, std::move(pending_)});
    pending_ = {};
    // Rewrite the manifest after every stage: a crash between stages loses
    // at most the stage in flight.
    save_manifest(options_.workdir, {config_hash(), completed_});
    summary.stages.push_back({spec.name, false, watch.seconds()});
    util::log_info() << "run: stage '" << spec.name << "' completed in " << watch.seconds()
                     << "s";
  }

  std::string config_hash() const { return hash_pipeline_config(options_.config); }

 private:
  /// The previous run's record for this stage, when resume applies to it.
  const StageRecord* reusable_record(const char* name) const {
    if (!options_.resume) return nullptr;
    if (manifest_.config_hash != config_hash()) return nullptr;
    // Stages are only reusable in prefix order behind already-valid ones:
    // a recomputed earlier stage is deterministic, so identical artifacts
    // keep later digests valid — but a *failed* validation earlier means
    // later stages were built from inputs we no longer trust.
    const std::size_t position = completed_.size();
    if (position >= manifest_.stages.size()) return nullptr;
    if (manifest_.stages[position].name != name) return nullptr;
    for (std::size_t i = 0; i < position; ++i) {
      if (completed_[i].name != manifest_.stages[i].name ||
          !equal_entries(completed_[i].artifacts, manifest_.stages[i].artifacts)) {
        return nullptr;
      }
    }
    return &manifest_.stages[position];
  }

  static bool equal_entries(const std::vector<ManifestEntry>& a,
                            const std::vector<ManifestEntry>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].file != b[i].file || a[i].digest != b[i].digest) return false;
    }
    return true;
  }

  const RunOptions& options_;
  Manifest manifest_;                  // from the previous run (may be empty)
  std::vector<StageRecord> completed_; // this run, in order
  std::vector<ManifestEntry> pending_; // artifacts of the stage in flight
};

}  // namespace

// ---------------------------------------------------------- config hash

std::string hash_pipeline_config(const PipelineConfig& config) {
  std::ostringstream out;
  out.precision(17);
  out << "run-config 2";
  out << " trace=" << config.trace.seed << ',' << config.trace.campaign_seed << ','
      << config.trace.hosts << ',' << config.trace.days << ',' << config.trace.benign_sites
      << ',' << config.trace.malware_families;
  out << " prune=" << config.behavior.prune.min_left_degree << ','
      << config.behavior.prune.max_left_fraction;
  out << " proj=" << config.behavior.query_projection.min_similarity << ','
      << config.behavior.ip_projection.min_similarity << ','
      << config.behavior.temporal_projection.min_similarity;
  // The backend and sketch parameters change which edges the similarity
  // graphs contain, so a mode/parameter switch must invalidate resumed
  // stages (projection_threads, by contrast, is output-neutral).
  out << " projmode=" << static_cast<int>(config.projection_mode) << ','
      << config.sketch.signature_size << ',' << config.sketch.bands << ','
      << config.sketch.bits << ',' << config.sketch.top_k << ',' << config.sketch.seed;
  out << " embed=" << static_cast<int>(config.embedding.method) << ','
      << config.embedding_dimension << ',' << config.embedding.line.total_samples << ','
      << config.seed;
  out << " labeling=" << config.labeling.malicious_fraction << ',' << config.labeling.seed;
  out << " svm=" << static_cast<int>(config.svm.kernel) << ',' << config.svm.c << ','
      << config.svm.gamma << ',' << config.kfold;
  out << " xmeans=" << config.xmeans.k_min << ',' << config.xmeans.k_max << ','
      << config.xmeans.seed;
  return util::hex64(util::xxhash64(out.str()));
}

// ------------------------------------------------------------------ run

RunSummary run_resumable(const RunOptions& options) {
  if (options.workdir.empty()) throw std::invalid_argument{"run_resumable: empty workdir"};
  obs::StageSpan run_span{"run.pipeline"};
  util::fsio::create_directories(options.workdir);

  Manifest previous;
  if (options.resume) {
    if (auto loaded = try_load_manifest(options.workdir)) previous = std::move(*loaded);
  }
  StageDriver driver{options, std::move(previous)};
  const auto& specs = stage_specs();
  const auto path = [&](const char* file) { return join(options.workdir, file); };

  RunSummary summary;
  summary.report_path = path("report.md");
  const PipelineConfig& config = options.config;

  // trace: synthesize the campus capture into the three bipartite graphs
  // plus the ground-truth registry.
  driver.stage(specs[0], summary, [&](const StageWatchdog& watchdog) {
    GraphBuilderSink graphs;
    const auto trace_result = trace::generate_trace(config.trace, graphs);
    watchdog.check();
    graph::save_bipartite_file(path("hdbg.bg"), graphs.take_hdbg());
    driver.committed("hdbg.bg", watchdog);
    graph::save_bipartite_file(path("dibg.bg"), graphs.take_dibg());
    driver.committed("dibg.bg", watchdog);
    graph::save_bipartite_file(path("dtbg.bg"), graphs.take_dtbg());
    driver.committed("dtbg.bg", watchdog);
    trace::save_ground_truth_file(path("truth.gt"), trace_result.truth);
    driver.committed("truth.gt", watchdog);
    util::save_artifact(path("trace.stats"), "trace-stats",
                        trace_stats_payload({trace_result.dns_events,
                                             trace_result.nxdomain_events,
                                             trace_result.flow_events}));
    driver.committed("trace.stats", watchdog);
  });

  // behavior: prune + project the reloaded bipartite graphs.
  driver.stage(specs[1], summary, [&](const StageWatchdog& watchdog) {
    auto hdbg = graph::load_bipartite_file(path("hdbg.bg"));
    auto dibg = graph::load_bipartite_file(path("dibg.bg"));
    auto dtbg = graph::load_bipartite_file(path("dtbg.bg"));
    watchdog.check();
    BehaviorModelConfig behavior = config.behavior;
    for (auto* proj : {&behavior.query_projection, &behavior.ip_projection,
                       &behavior.temporal_projection}) {
      proj->threads = config.projection_threads;
      proj->mode = config.projection_mode;
      proj->sketch = config.sketch;
    }
    auto model =
        build_behavior_model(std::move(hdbg), std::move(dibg), std::move(dtbg), behavior);
    watchdog.check();
    util::save_artifact(path("kept.domains"), "domain-list",
                        domain_list_payload(model.kept_domains));
    driver.committed("kept.domains", watchdog);
    graph::save_csr_file(path("query_sim.csr"), model.query_similarity);
    driver.committed("query_sim.csr", watchdog);
    graph::save_csr_file(path("ip_sim.csr"), model.ip_similarity);
    driver.committed("ip_sim.csr", watchdog);
    graph::save_csr_file(path("temporal_sim.csr"), model.temporal_similarity);
    driver.committed("temporal_sim.csr", watchdog);
  });

  // embed: one embedding per similarity graph (seed, seed+1, seed+2 as in
  // run_pipeline), then the concatenated vector. The CSR graphs are
  // memory-mapped, not parsed: LINE's edge sampler reads the mapped
  // sections in place.
  driver.stage(specs[2], summary, [&](const StageWatchdog& watchdog) {
    const auto kept = parse_domain_list(
        util::load_artifact(path("kept.domains"), "domain-list"), path("kept.domains"));
    embed::EmbedConfig embed_config = config.embedding;
    embed_config.dimension = config.embedding_dimension;

    embed_config.seed = config.seed;
    const auto query =
        embed::embed_graph(graph::load_csr_file(path("query_sim.csr")), embed_config);
    query.save_arena_file(path("query.emb"));
    driver.committed("query.emb", watchdog);

    embed_config.seed = config.seed + 1;
    const auto ip =
        embed::embed_graph(graph::load_csr_file(path("ip_sim.csr")), embed_config);
    ip.save_arena_file(path("ip.emb"));
    driver.committed("ip.emb", watchdog);

    embed_config.seed = config.seed + 2;
    const auto temporal =
        embed::embed_graph(graph::load_csr_file(path("temporal_sim.csr")), embed_config);
    temporal.save_arena_file(path("temporal.emb"));
    driver.committed("temporal.emb", watchdog);

    embed::EmbeddingMatrix::concat(kept, {&query, &ip, &temporal})
        .save_arena_file(path("combined.emb"));
    driver.committed("combined.emb", watchdog);
  });

  // labels: ground truth + simulated VirusTotal over the kept domains.
  driver.stage(specs[3], summary, [&](const StageWatchdog& watchdog) {
    const auto truth = trace::load_ground_truth_file(path("truth.gt"));
    const auto kept = parse_domain_list(
        util::load_artifact(path("kept.domains"), "domain-list"), path("kept.domains"));
    watchdog.check();
    const intel::VirusTotalSim vt{truth, config.virustotal};
    intel::save_labeled_file(path("labeled.set"),
                             intel::build_labeled_set(kept, truth, vt, config.labeling));
    driver.committed("labeled.set", watchdog);
  });

  // report: per-channel SVM evaluation + clustering over the persisted
  // artifacts only (nothing carried in memory from earlier stages).
  driver.stage(specs[4], summary, [&](const StageWatchdog& watchdog) {
    PipelineResult result;
    result.trace.truth = trace::load_ground_truth_file(path("truth.gt"));
    const auto stats = parse_trace_stats(
        util::load_artifact(path("trace.stats"), "trace-stats"), path("trace.stats"));
    result.trace.dns_events = stats.dns_events;
    result.trace.nxdomain_events = stats.nxdomain_events;
    result.trace.flow_events = stats.flow_events;
    result.model.kept_domains = parse_domain_list(
        util::load_artifact(path("kept.domains"), "domain-list"), path("kept.domains"));
    result.model.query_similarity = graph::from_csr(graph::load_csr_file(path("query_sim.csr")));
    result.model.ip_similarity = graph::from_csr(graph::load_csr_file(path("ip_sim.csr")));
    result.model.temporal_similarity =
        graph::from_csr(graph::load_csr_file(path("temporal_sim.csr")));
    result.query_embedding = embed::EmbeddingMatrix::load_arena_file(path("query.emb"));
    result.ip_embedding = embed::EmbeddingMatrix::load_arena_file(path("ip.emb"));
    result.temporal_embedding = embed::EmbeddingMatrix::load_arena_file(path("temporal.emb"));
    result.combined_embedding = embed::EmbeddingMatrix::load_arena_file(path("combined.emb"));
    result.labels = intel::load_labeled_file(path("labeled.set"));
    watchdog.check();

    const auto evals = evaluate_channels(result, config);
    watchdog.check();
    const auto clusters = cluster_domains(result.combined_embedding,
                                          result.model.kept_domains, result.trace.truth,
                                          config.xmeans);
    watchdog.check();
    std::ostringstream report;
    write_detection_report(report, result, evals, clusters);
    util::fsio::atomic_write_file(path("report.md"), report.str());
    driver.committed("report.md", watchdog);
  });

  return summary;
}

}  // namespace dnsembed::core
