// Cluster mining (paper §7): X-Means over domain embeddings, per-cluster
// family analysis (Tables 1-2), and netflow traffic-pattern correlation for
// malicious clusters (§7.2.2).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "embed/embedding.hpp"
#include "ml/xmeans.hpp"
#include "trace/ground_truth.hpp"
#include "trace/sink.hpp"

namespace dnsembed::core {

struct DomainCluster {
  std::size_t id = 0;
  std::vector<std::string> domains;
  std::size_t malicious = 0;               // ground-truth malicious members
  std::string dominant_family;             // family name with most members ("" if none)
  std::size_t dominant_family_count = 0;
  double malicious_fraction() const noexcept {
    return domains.empty() ? 0.0
                           : static_cast<double>(malicious) / static_cast<double>(domains.size());
  }
};

struct ClusteringResult {
  std::vector<DomainCluster> clusters;     // ordered by descending malicious fraction
  std::vector<std::size_t> assignment;     // aligned with the input domain list
  std::size_t k = 0;
};

/// X-Means over the embedding rows of `domains` (Euclidean distance on the
/// embedding vectors, as in the paper).
ClusteringResult cluster_domains(const embed::EmbeddingMatrix& embedding,
                                 const std::vector<std::string>& domains,
                                 const trace::GroundTruth& truth,
                                 const ml::XMeansConfig& config);

/// §7.2.2: join a malicious cluster against netflow — which server IPs,
/// which destination ports, and how many distinct campus hosts.
struct ClusterTrafficPattern {
  std::size_t cluster_id = 0;
  std::vector<std::string> server_ips;     // flow destinations serving the cluster's domains
  std::vector<std::uint16_t> ports;
  std::size_t distinct_hosts = 0;
  std::size_t flows = 0;
};

ClusterTrafficPattern traffic_pattern_for(const DomainCluster& cluster,
                                          const trace::GroundTruth& truth,
                                          const std::vector<trace::NetflowRecord>& flows);

}  // namespace dnsembed::core
