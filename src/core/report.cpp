#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "core/scenario.hpp"

namespace dnsembed::core {

namespace {

/// "Per-scenario detection" section: the combined channel's out-of-fold
/// scores sliced by campaign archetype, plus seed-expansion reach from the
/// cluster structure. Emitted only when the scores are row-aligned with the
/// labeled set and the truth knows at least one family (simulation runs).
void write_scenario_section(std::ostream& out, const PipelineResult& result,
                            const ChannelEvaluations& evals, const ClusteringResult& clusters,
                            const ReportOptions& options) {
  const auto& scores = evals.combined.scores.scores;
  if (scores.size() != result.labels.size() || result.trace.truth.families().empty()) return;
  auto evaluation =
      evaluate_scenarios(result.labels, scores, result.trace.truth, options.score_threshold);
  if (evaluation.scenarios.empty()) return;
  annotate_seed_expansion(evaluation, clusters, result.trace.truth);

  out << "## Per-scenario detection\n\n";
  out << "| scenario | labeled | recall | precision | AUC | seed-expansion reach |\n";
  out << "|---|---|---|---|---|---|\n";
  char row[256];
  for (const auto& metrics : evaluation.scenarios) {
    char auc_text[32];
    if (metrics.auc_valid) {
      std::snprintf(auc_text, sizeof(auc_text), "%.4f", metrics.auc);
    } else {
      std::snprintf(auc_text, sizeof(auc_text), "n/a");
    }
    char reach_text[48];
    if (metrics.expansion_candidates > 0) {
      std::snprintf(reach_text, sizeof(reach_text), "%zu/%zu", metrics.expansion_reached,
                    metrics.expansion_candidates);
    } else {
      std::snprintf(reach_text, sizeof(reach_text), "n/a");
    }
    std::snprintf(row, sizeof(row), "| %s | %zu | %.4f | %.4f | %s | %s |\n",
                  metrics.scenario.c_str(), metrics.labeled, metrics.recall, metrics.precision,
                  auc_text, reach_text);
    out << row;
  }
  out << "\nbenign labeled: " << evaluation.benign_labeled << ", benign false positives at threshold: "
      << evaluation.benign_false_positives << "\n\n";
}

}  // namespace

void write_detection_report(std::ostream& out, const PipelineResult& result,
                            const ChannelEvaluations& evals,
                            const ClusteringResult& clusters, const ReportOptions& options) {
  out << "# dnsembed detection report\n\n";

  out << "## Traffic and behavioral model\n\n";
  out << "| metric | value |\n|---|---|\n";
  out << "| DNS events | " << result.trace.dns_events << " |\n";
  out << "| NXDOMAIN events | " << result.trace.nxdomain_events << " |\n";
  out << "| netflow records | " << result.flows.size() << " |\n";
  out << "| domains after pruning | " << result.model.kept_domains.size() << " |\n";
  out << "| query-similarity edges | " << result.model.query_similarity.edge_count() << " |\n";
  out << "| IP-similarity edges | " << result.model.ip_similarity.edge_count() << " |\n";
  out << "| temporal-similarity edges | " << result.model.temporal_similarity.edge_count()
      << " |\n";
  out << "| labeled domains | " << result.labels.size() << " ("
      << result.labels.malicious_count() << " malicious) |\n\n";

  out << "## Detection quality (cross-validated AUC)\n\n";
  out << "| feature channel | AUC |\n|---|---|\n";
  out << "| query behavioral | " << evals.query.auc << " |\n";
  out << "| IP resolving | " << evals.ip.auc << " |\n";
  out << "| temporal | " << evals.temporal.auc << " |\n";
  out << "| **combined** | **" << evals.combined.auc << "** |\n\n";
  const auto& cm = evals.combined.confusion_at_zero;
  out << "At decision threshold " << options.score_threshold << ": accuracy "
      << cm.accuracy() << ", precision " << cm.precision() << ", recall " << cm.recall()
      << ", FPR " << cm.fpr() << ".\n\n";

  write_scenario_section(out, result, evals, clusters, options);

  out << "## Most suspicious clusters\n\n";
  std::size_t shown = 0;
  for (const auto& cluster : clusters.clusters) {
    if (cluster.domains.size() < 3) continue;
    if (shown >= options.top_clusters) break;
    out << "### Cluster " << cluster.id << " — " << cluster.domains.size() << " domains";
    if (!cluster.dominant_family.empty()) {
      out << " (ground truth: " << 100.0 * cluster.malicious_fraction() << "% malicious, "
          << cluster.dominant_family << ")";
    }
    out << "\n\n";
    out << "sample: ";
    const std::size_t n = std::min(options.sample_domains, cluster.domains.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (i != 0) out << ", ";
      out << "`" << cluster.domains[i] << "`";
    }
    out << "\n\n";
    const auto pattern = traffic_pattern_for(cluster, result.trace.truth, result.flows);
    if (pattern.flows > 0) {
      out << "traffic: " << pattern.flows << " flows to " << pattern.server_ips.size()
          << " server IP(s) from " << pattern.distinct_hosts << " campus host(s), ports {";
      for (std::size_t i = 0; i < pattern.ports.size(); ++i) {
        if (i != 0) out << ", ";
        out << pattern.ports[i];
      }
      out << "}\n\n";
    }
    ++shown;
  }
  out << "---\ngenerated by dnsembed\n";
}

void write_worker_resources(std::ostream& out, const SupervisionStats& stats) {
  if (stats.resources.empty()) return;
  out << "Worker resources\n\n";
  out << "| task | attempts | wall s | cpu user s | cpu sys s | max RSS MB |\n";
  out << "|---|---|---|---|---|---|\n";
  char row[256];
  for (const auto& res : stats.resources) {
    std::snprintf(row, sizeof(row), "| %s | %zu | %.2f | %.2f | %.2f | %.1f |\n",
                  res.task.c_str(), res.attempts, res.wall_seconds, res.cpu_user_seconds,
                  res.cpu_system_seconds, static_cast<double>(res.max_rss_kb) / 1024.0);
    out << row;
  }
}

}  // namespace dnsembed::core
