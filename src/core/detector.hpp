// Supervised detection (paper §6, §8.1): turn domain embeddings plus a
// labeled set into an SVM training problem, evaluate with stratified k-fold
// cross-validation, and report the ROC/AUC.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "embed/embedding.hpp"
#include "intel/labels.hpp"
#include "ml/calibration.hpp"
#include "ml/crossval.hpp"
#include "ml/dataset.hpp"
#include "ml/metrics.hpp"
#include "ml/svm.hpp"

namespace dnsembed::core {

/// Assemble the feature matrix for the labeled domains from an embedding
/// (domains missing from the embedding get zero rows — they exist in the
/// trace but had no similarity edges).
ml::Dataset make_dataset(const embed::EmbeddingMatrix& embedding,
                         const intel::LabeledSet& labels);

struct DetectionEvaluation {
  std::vector<ml::RocPoint> roc;
  double auc = 0.0;
  ml::ConfusionMatrix confusion_at_zero;  // threshold 0 on the SVM margin
  std::size_t folds = 0;
  ml::CrossValScores scores;              // out-of-fold decision values
};

/// k-fold cross-validated SVM evaluation (paper: k = 10, RBF, C = 0.09,
/// gamma = 0.06).
DetectionEvaluation evaluate_svm(const ml::Dataset& data, const ml::SvmConfig& svm,
                                 std::size_t folds, std::uint64_t seed);

/// Train on the full labeled set and score arbitrary domains (deployment
/// mode: classify new domains seen in the same network).
class DomainDetector {
 public:
  DomainDetector(const embed::EmbeddingMatrix& embedding, const intel::LabeledSet& labels,
                 const ml::SvmConfig& svm);

  /// SVM decision value for a domain (positive = malicious side). Domains
  /// missing from the embedding score at the zero-vector point — check
  /// knows() to distinguish "benign-looking" from "never observed".
  double score(const std::string& domain) const;
  bool is_malicious(const std::string& domain, double threshold = 0.0) const;

  /// True when the domain has an embedding row (was seen in the modeled
  /// traffic and survived pruning).
  bool knows(const std::string& domain) const;

  /// Fit a Platt scaler on OUT-OF-FOLD scores of the training labels so
  /// probability() is available. `folds`-fold CV inside the labeled set.
  void calibrate(const intel::LabeledSet& labels, std::size_t folds = 5,
                 std::uint64_t seed = 1);
  bool calibrated() const noexcept { return scaler_.fitted(); }

  /// Calibrated P(malicious); requires calibrate() first.
  double probability(const std::string& domain) const;

 private:
  const embed::EmbeddingMatrix* embedding_;
  ml::SvmModel model_;
  ml::SvmConfig svm_config_;
  ml::PlattScaler scaler_;
};

}  // namespace dnsembed::core
