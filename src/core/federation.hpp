// Cross-network campaign mining — the paper's future-work section: deploy
// the detector on several campuses and correlate their malicious clusters
// to surface large-scale attack campaigns (same domains or same serving
// infrastructure observed from independent vantage points).
//
// Each campus shares a compact CampusReport (suspicious clusters with their
// member domains and observed serving IPs — no raw logs, no host ids).
// correlate_campuses() unions clusters that share a domain or an IP and
// reports every campaign seen from two or more campuses.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/behavior.hpp"
#include "core/clustering.hpp"

namespace dnsembed::core {

/// One suspicious cluster as shared by a campus.
struct SharedCluster {
  std::size_t cluster_id = 0;
  std::vector<std::string> domains;
  std::vector<std::string> server_ips;  // dotted-quad strings
};

/// What a campus exports to the federation.
struct CampusReport {
  std::string campus;
  std::vector<SharedCluster> clusters;
};

/// Build a report from local clustering results: clusters whose malicious
/// fraction (by local detector verdicts in `is_suspicious`) reaches
/// `min_suspicious_fraction` are shared, with serving IPs read from the
/// campus's IP-domain bipartite graph.
///
/// `is_suspicious(domain)` is the campus's local verdict (detector score or
/// ground truth in tests).
CampusReport make_campus_report(
    std::string campus_name, const ClusteringResult& clustering,
    const std::vector<std::string>& domains, const graph::BipartiteGraph& dibg,
    const std::function<bool(const std::string&)>& is_suspicious,
    double min_suspicious_fraction = 0.5);

/// One cross-campus campaign: a connected component of shared clusters.
struct Campaign {
  std::vector<std::string> campuses;       // sorted, unique
  std::vector<std::string> domains;        // union, sorted
  std::vector<std::string> shared_domains; // seen from >= 2 campuses
  std::vector<std::string> shared_ips;     // seen from >= 2 campuses
};

/// Union clusters across reports on shared domains/IPs; return campaigns
/// spanning at least `min_campuses` networks, largest first.
std::vector<Campaign> correlate_campuses(const std::vector<CampusReport>& reports,
                                         std::size_t min_campuses = 2);

}  // namespace dnsembed::core
