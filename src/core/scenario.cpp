#include "core/scenario.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "ml/metrics.hpp"
#include "obs/metrics.hpp"

namespace dnsembed::core {

namespace {

/// Canonical archetype order (FamilyKind enum order). Residual tags —
/// hand-built labeled sets, future kinds — sort lexically after these.
constexpr std::array<trace::FamilyKind, 8> kArchetypeOrder{
    trace::FamilyKind::kDgaCnc,    trace::FamilyKind::kSpam,
    trace::FamilyKind::kPhishing,  trace::FamilyKind::kFastFlux,
    trace::FamilyKind::kStaticCnc, trace::FamilyKind::kApt,
    trace::FamilyKind::kZeroDay,   trace::FamilyKind::kEvasion};

std::string row_scenario(const intel::LabeledSet& labels, const trace::GroundTruth& truth,
                         std::size_t row) {
  const std::string_view tagged = labels.scenario(row);
  if (!tagged.empty()) return std::string{tagged};
  const std::string_view derived = truth.scenario_of(labels.domains[row]);
  return derived.empty() ? "unknown" : std::string{derived};
}

}  // namespace

ScenarioEvaluation evaluate_scenarios(const intel::LabeledSet& labels,
                                      const std::vector<double>& scores,
                                      const trace::GroundTruth& truth, double threshold) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument{"evaluate_scenarios: scores/labels size mismatch"};
  }
  ScenarioEvaluation out;
  std::vector<double> benign_scores;
  std::unordered_map<std::string, std::vector<double>> per_scenario;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels.labels[i] == 1) {
      per_scenario[row_scenario(labels, truth, i)].push_back(scores[i]);
    } else {
      ++out.benign_labeled;
      if (scores[i] >= threshold) ++out.benign_false_positives;
      benign_scores.push_back(scores[i]);
    }
  }

  // Deterministic scenario order: archetypes first, residual tags sorted.
  std::vector<std::string> order;
  for (const auto kind : kArchetypeOrder) {
    const std::string name{trace::family_kind_name(kind)};
    if (per_scenario.contains(name)) order.push_back(name);
  }
  std::vector<std::string> residual;
  for (const auto& [tag, unused] : per_scenario) {
    if (std::find(order.begin(), order.end(), tag) == order.end()) residual.push_back(tag);
  }
  std::sort(residual.begin(), residual.end());
  order.insert(order.end(), residual.begin(), residual.end());

  for (const auto& tag : order) {
    const auto& positives = per_scenario[tag];
    ScenarioMetrics metrics;
    metrics.scenario = tag;
    metrics.labeled = positives.size();
    for (const double s : positives) {
      if (s >= threshold) ++metrics.detected;
    }
    metrics.recall = metrics.labeled == 0 ? 0.0
                                          : static_cast<double>(metrics.detected) /
                                                static_cast<double>(metrics.labeled);
    const std::size_t flagged = metrics.detected + out.benign_false_positives;
    metrics.precision =
        flagged == 0 ? 0.0 : static_cast<double>(metrics.detected) / static_cast<double>(flagged);
    if (!positives.empty() && !benign_scores.empty()) {
      std::vector<double> pooled;
      std::vector<int> pooled_labels;
      pooled.reserve(positives.size() + benign_scores.size());
      pooled_labels.reserve(positives.size() + benign_scores.size());
      for (const double s : positives) {
        pooled.push_back(s);
        pooled_labels.push_back(1);
      }
      for (const double s : benign_scores) {
        pooled.push_back(s);
        pooled_labels.push_back(0);
      }
      metrics.auc = ml::roc_auc(pooled, pooled_labels);
      metrics.auc_valid = true;
    }
    obs::metrics().gauge("scenario." + tag + ".labeled").set(static_cast<std::int64_t>(metrics.labeled));
    obs::metrics().gauge("scenario." + tag + ".detected").set(static_cast<std::int64_t>(metrics.detected));
    obs::metrics()
        .gauge("scenario." + tag + ".recall_milli")
        .set(static_cast<std::int64_t>(metrics.recall * 1000.0));
    out.scenarios.push_back(std::move(metrics));
  }
  obs::metrics().gauge("scenario.archetypes").set(static_cast<std::int64_t>(out.scenarios.size()));
  return out;
}

void annotate_seed_expansion(ScenarioEvaluation& evaluation, const ClusteringResult& clusters,
                             const trace::GroundTruth& truth) {
  std::unordered_map<std::string, ScenarioMetrics*> by_tag;
  for (auto& metrics : evaluation.scenarios) by_tag.emplace(metrics.scenario, &metrics);
  for (const auto& cluster : clusters.clusters) {
    // Scenarios of the malicious members of this cluster.
    std::unordered_set<std::string> present;
    for (const auto& domain : cluster.domains) {
      if (truth.is_malicious(domain)) present.emplace(truth.scenario_of(domain));
    }
    if (present.empty()) continue;
    for (const auto& domain : cluster.domains) {
      if (!truth.is_malicious(domain)) continue;
      const std::string tag{truth.scenario_of(domain)};
      const auto it = by_tag.find(tag);
      if (it == by_tag.end()) continue;
      ++it->second->expansion_candidates;
      // Reached when the cluster also holds a seed from ANOTHER scenario.
      const bool reached =
          std::any_of(present.begin(), present.end(),
                      [&](const std::string& other) { return other != tag; });
      if (reached) ++it->second->expansion_reached;
    }
  }
}

}  // namespace dnsembed::core
