// Process supervision for the resumable runner: forks worker processes to
// execute pipeline tasks, watches them for crash (waitpid), hang (stale
// heartbeat file -> SIGKILL), and corrupt output (container validation
// after exit), retries failures with the fsio bounded-backoff schedule, and
// quarantines a shard task once its retry budget is exhausted so the run
// degrades to a partial-but-flagged report instead of dying.
//
// The supervisor is deliberately ignorant of pipeline semantics: it runs
// WorkerTasks — a name, a child-side body, and the list of artifact files
// the body must leave behind. core/run builds the task lists (projection
// shards, per-channel LINE training, ...) and performs the deterministic
// merges between stages; workers exchange results exclusively through the
// checksummed artifact container, never through memory.
//
// Every supervision event flows through the obs registry:
//   supervisor.restarts / .crashes / .hangs_killed / .corrupt_outputs
//   supervisor.quarantined, supervisor.tasks.run / .reused,
//   supervisor.sidecar_corrupt, supervisor.heartbeat_age_ms le-histogram
//   (sampled every poll tick), supervisor.task.{cpu_seconds,wall_seconds,
//   max_rss_kb} per-attempt rusage histograms, "supervisor.<task>" trace
//   spans — and, because each worker writes a telemetry sidecar the
//   supervisor merges back (obs/sidecar.hpp), everything the workers
//   themselves recorded.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/plan.hpp"

namespace dnsembed::core {

struct SupervisorOptions {
  /// Worker processes to run concurrently. 0 disables the supervisor: the
  /// runner executes every stage in-process exactly as before.
  std::size_t workers = 0;

  /// Retries per task after its first attempt; a task failing
  /// 1 + max_retries times is quarantined (shard tasks) or fatal.
  std::size_t max_retries = 2;

  /// Seconds between worker heartbeat writes.
  double heartbeat_interval_seconds = 0.25;

  /// A worker whose heartbeat has not advanced for this long is declared
  /// hung and SIGKILLed. 0 = 10x the heartbeat interval.
  double heartbeat_timeout_seconds = 0.0;

  /// Pair-hash shards per projection channel (exact mode; the sketched
  /// backend is not pair-shardable and runs one task per channel).
  std::size_t projection_shards = 4;

  /// Seeded process fault injection (proc_* channels); all-zero rates by
  /// default. Interpreted by fault::ProcessFaultChannel inside the child.
  fault::FaultPlan process_faults;

  /// Live run status file (`run --status-out FILE`): atomically rewritten
  /// JSON with per-task state/attempt/heartbeat age/quarantine/rusage,
  /// refreshed on every state change and at least once per heartbeat
  /// interval. Empty = disabled. Advisory plain-POSIX writes, like the
  /// heartbeat files.
  std::string status_path;
};

/// Per-task resource accounting from wait4 rusage, accumulated across every
/// attempt of the task (cpu and wall sum; RSS takes the max).
struct TaskResources {
  std::string task;
  std::size_t attempts = 0;  // attempts reaped, including failed ones
  double wall_seconds = 0.0;
  double cpu_user_seconds = 0.0;
  double cpu_system_seconds = 0.0;
  long max_rss_kb = 0;
};

/// What the supervisor did across a run, folded into RunSummary.
struct SupervisionStats {
  std::size_t restarts = 0;         // retry attempts scheduled (any cause)
  std::size_t crashes = 0;          // nonzero exit / killed by a signal
  std::size_t hangs_killed = 0;     // stale heartbeat -> SIGKILL
  std::size_t corrupt_outputs = 0;  // exit 0 but invalid output containers
  std::size_t tasks_run = 0;        // task attempts that completed validly
  std::size_t tasks_reused = 0;     // skipped: scratch outputs still valid
  std::vector<std::string> quarantined;  // tasks that exhausted retries
  /// One row per task that ran at least one attempt, in first-spawn order
  /// (deterministic: tasks spawn in task-list order). Feeds the CLI
  /// "Worker resources" table and the --status-out file — NOT report.md,
  /// which must stay byte-identical to a single-process run.
  std::vector<TaskResources> resources;
};

/// One unit of supervised work.
struct WorkerTask {
  /// Unique name, e.g. "behavior.query.s1". Keys the heartbeat file, the
  /// backoff jitter, fault-injection draws, metrics, and quarantine rows.
  std::string name;

  /// Quarantinable tasks (projection shards) degrade the run when their
  /// retries are exhausted; for any other task that is a fatal error.
  bool quarantinable = false;

  /// Reusable tasks are skipped when every output already validates —
  /// only safe for scratch outputs gated by the scratch config hash
  /// (final artifacts are reused at stage granularity by the manifest).
  bool reusable = false;

  struct Output {
    std::string path;
    /// Artifact kind to validate after the child succeeds; nullptr = plain
    /// file, existence-checked only.
    const char* kind = nullptr;
  };
  std::vector<Output> outputs;

  /// Runs in the forked child. Throwing makes the attempt a failure.
  std::function<void()> body;
};

/// A non-quarantinable task exhausted its retry budget (or could not be
/// spawned at all).
class SupervisorError : public std::runtime_error {
 public:
  SupervisorError(std::string task, const std::string& detail);
  const std::string& task() const noexcept { return task_; }

 private:
  std::string task_;
};

class Supervisor {
 public:
  /// `workdir` is the run's working directory; scratch state (heartbeats,
  /// shard partials, the scratch config hash) lives under workdir/sv.
  Supervisor(std::string workdir, SupervisorOptions options);

  /// Prepare the scratch directory. Wipes it when the config hash changed
  /// or resume is off, so stale partials can never leak into a merge;
  /// otherwise leaves valid partials for reusable tasks to skip.
  void reset_scratch(const std::string& config_hash, bool resume);

  /// workdir/sv/<file>.
  std::string scratch_path(const std::string& file) const;

  /// Run every task to completion (done, reused, or quarantined) with up to
  /// options.workers children in flight. `poll` is invoked on every
  /// scheduling round; it may throw (the stage-deadline watchdog does) and
  /// all children are SIGKILLed and reaped before the exception escapes.
  /// Throws SupervisorError when a non-quarantinable task exhausts its
  /// retries. Quarantined task names accumulate in stats().
  void run_tasks(const std::vector<WorkerTask>& tasks, const std::function<void()>& poll);

  const SupervisionStats& stats() const noexcept { return stats_; }

 private:
  /// One row of the --status-out file. Rows persist across run_tasks calls
  /// so the file covers the whole run, not just the current stage.
  struct TaskStatus {
    std::string task;
    std::string state;  // pending|running|backoff|done|reused|quarantined
    std::size_t attempt = 0;             // attempts started so far
    std::int64_t heartbeat_age_ms = -1;  // -1 when not running
  };

  TaskResources& resources_for(const std::string& task);
  TaskStatus& status_row(const std::string& task);
  void set_status(const std::string& task, const char* state, std::size_t attempt,
                  std::int64_t heartbeat_age_ms);
  /// Atomic-rewrite the status file. Throttled: writes when a state changed
  /// (set_status marks dirty) or a heartbeat interval elapsed; `force`
  /// bypasses the throttle (batch completion).
  void write_status(bool force);

  std::string workdir_;
  SupervisorOptions options_;
  SupervisionStats stats_;
  std::vector<TaskStatus> status_;
  std::chrono::steady_clock::time_point last_status_write_{};
  bool status_dirty_ = false;
};

}  // namespace dnsembed::core
