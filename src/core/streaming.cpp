#include "core/streaming.hpp"

#include <algorithm>

#include "core/detector.hpp"
#include "intel/labels.hpp"

namespace dnsembed::core {

StreamingDetector::StreamingDetector(StreamingConfig config, const trace::GroundTruth& truth,
                                     const intel::VirusTotalSim& vt)
    : config_{std::move(config)},
      truth_{&truth},
      vt_{&vt},
      psl_{&dns::PublicSuffixList::builtin()} {}

void StreamingDetector::advance_day(const std::vector<dns::LogEntry>& entries) {
  for (const auto& entry : entries) {
    first_seen_.try_emplace(psl_->e2ld_or_self(entry.qname), day_);
  }
  window_.push_back(entries);
  while (window_.size() > config_.window_days) window_.pop_front();
  retrain_and_score();
  ++day_;
}

void StreamingDetector::retrain_and_score() {
  // Build this window's behavior model.
  GraphBuilderSink graphs;
  for (const auto& day_entries : window_) {
    for (const auto& entry : day_entries) graphs.on_dns(entry);
  }
  auto model = build_behavior_model(graphs.take_hdbg(), graphs.take_dibg(),
                                    graphs.take_dtbg(), config_.behavior);
  if (model.kept_domains.size() < 20) return;  // too little traffic yet

  embed::EmbedConfig ec = config_.embedding;
  ec.dimension = config_.embedding_dimension;
  ec.seed = config_.seed + day_ * 3;
  const auto q = embed::embed_graph(model.query_similarity, ec);
  ec.seed += 1;
  const auto i = embed::embed_graph(model.ip_similarity, ec);
  ec.seed += 1;
  const auto t = embed::embed_graph(model.temporal_similarity, ec);
  const auto combined = embed::EmbeddingMatrix::concat(model.kept_domains, {&q, &i, &t});

  // Labels available today: benign whitelist immediately; malicious only
  // when VT-confirmed AND first seen at least label_delay_days ago.
  intel::LabeledSet labels;
  std::vector<std::string> scorable;
  for (const auto& domain : model.kept_domains) {
    const auto seen = first_seen_.find(domain);
    const bool delayed_ok = seen != first_seen_.end() &&
                            day_ >= seen->second + config_.label_delay_days;
    if (truth_->is_malicious(domain)) {
      if (delayed_ok && vt_->confirmed(domain)) {
        labels.domains.push_back(domain);
        labels.labels.push_back(1);
      } else {
        scorable.push_back(domain);  // not yet blacklisted: must be caught
      }
    } else if (truth_->is_known(domain)) {
      labels.domains.push_back(domain);
      labels.labels.push_back(0);
    } else {
      scorable.push_back(domain);
    }
  }
  if (labels.malicious_count() < 5 || labels.malicious_count() == labels.size()) return;

  const ml::SvmModel svm = ml::train_svm(make_dataset(combined, labels), config_.svm);

  // Calibrate the alert threshold on benign training scores.
  std::vector<double> benign_scores;
  for (std::size_t k = 0; k < labels.size(); ++k) {
    if (labels.labels[k] != 0) continue;
    const auto vec = combined.vector_for(labels.domains[k]);
    std::vector<double> x(vec->begin(), vec->end());
    benign_scores.push_back(svm.decision_value(x));
  }
  std::sort(benign_scores.begin(), benign_scores.end());
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(benign_scores.size()) * (1.0 - config_.alert_fpr));
  const double threshold =
      benign_scores[std::min(cut, benign_scores.size() - 1)] + 1e-9;

  // Score the not-yet-blacklisted domains and alert above the threshold.
  for (const auto& domain : scorable) {
    if (first_flagged_.contains(domain)) continue;
    const auto vec = combined.vector_for(domain);
    std::vector<double> x(vec->begin(), vec->end());
    const double score = svm.decision_value(x);
    if (score > threshold) {
      first_flagged_.emplace(domain, day_);
      alerts_.push_back(DomainAlert{domain, day_, score});
    }
  }
}

}  // namespace dnsembed::core
