#include "core/streaming.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/detector.hpp"
#include "util/artifact.hpp"
#include "dns/log_io.hpp"
#include "intel/labels.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace dnsembed::core {

namespace {

constexpr std::string_view kCheckpointMagic = "dnsembed-streaming-checkpoint 1";

// Doubles round-trip through checkpoints by bit pattern, not decimal text,
// so a restored run scores bit-identically.
std::string score_bits_hex(double score) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &score, sizeof(bits));
  char buf[17];
  for (int i = 15; i >= 0; --i) {
    buf[i] = "0123456789abcdef"[bits & 0xF];
    bits >>= 4;
  }
  buf[16] = '\0';
  return buf;
}

double score_from_hex(std::string_view hex) {
  if (hex.size() != 16) throw std::runtime_error{"checkpoint: bad score encoding"};
  std::uint64_t bits = 0;
  for (const char c : hex) {
    bits <<= 4;
    if (c >= '0' && c <= '9') {
      bits |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      bits |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw std::runtime_error{"checkpoint: bad score encoding"};
    }
  }
  double score = 0.0;
  std::memcpy(&score, &bits, sizeof(score));
  return score;
}

std::string checkpoint_line(std::istream& in, const char* what) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error{std::string{"checkpoint: truncated before "} + what};
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

// Parse "<tag> <count>" section headers.
std::size_t section_count(const std::string& line, std::string_view tag) {
  if (line.size() <= tag.size() || line.compare(0, tag.size(), tag) != 0 ||
      line[tag.size()] != ' ') {
    throw std::runtime_error{std::string{"checkpoint: expected section '"} +
                             std::string{tag} + "', got '" + line + "'"};
  }
  std::size_t value = 0;
  const char* begin = line.data() + tag.size() + 1;
  const char* end = line.data() + line.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error{std::string{"checkpoint: bad count in section '"} +
                             std::string{tag} + "'"};
  }
  return value;
}

std::vector<std::string_view> split_tabs(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const auto pos = line.find('\t', start);
    if (pos == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

std::size_t parse_size(std::string_view text, const char* what) {
  std::size_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::runtime_error{std::string{"checkpoint: bad "} + what};
  }
  return value;
}

void write_domain_day_map(std::ostream& out, std::string_view tag,
                          const std::unordered_map<std::string, std::size_t>& map) {
  out << tag << ' ' << map.size() << '\n';
  // Sorted for a canonical byte stream (the map itself is unordered).
  std::vector<const std::pair<const std::string, std::size_t>*> items;
  items.reserve(map.size());
  for (const auto& item : map) items.push_back(&item);
  std::sort(items.begin(), items.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* item : items) out << item->first << '\t' << item->second << '\n';
}

void read_domain_day_map(std::istream& in, std::string_view tag,
                         std::unordered_map<std::string, std::size_t>& map) {
  const auto count = section_count(checkpoint_line(in, tag.data()), tag);
  map.clear();
  map.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto line = checkpoint_line(in, tag.data());
    const auto fields = split_tabs(line);
    if (fields.size() != 2 || fields[0].empty()) {
      throw std::runtime_error{"checkpoint: bad domain-day row"};
    }
    map.emplace(std::string{fields[0]}, parse_size(fields[1], "day index"));
  }
}

}  // namespace

StreamingDetector::StreamingDetector(StreamingConfig config, const trace::GroundTruth& truth,
                                     const intel::VirusTotalSim& vt)
    : config_{std::move(config)},
      truth_{&truth},
      vt_{&vt},
      psl_{&dns::PublicSuffixList::builtin()} {}

bool StreamingDetector::label_available(const std::string& domain,
                                        std::size_t first_seen_day) const {
  if (config_.label_feed) return config_.label_feed(domain, first_seen_day, day_);
  return day_ >= first_seen_day + config_.label_delay_days && vt_->confirmed(domain);
}

void StreamingDetector::advance_day(const std::vector<dns::LogEntry>& entries) {
  obs::StageSpan day_span{"core.streaming.day", util::LogLevel::kDebug};
  for (const auto& entry : entries) {
    first_seen_.try_emplace(psl_->e2ld_or_self(entry.qname), day_);
  }
  window_.push_back(entries);
  while (window_.size() > config_.window_days) window_.pop_front();

  StreamingDayRecord record;
  record.day = day_;
  record.entries = entries.size();
  for (const auto& day_entries : window_) record.window_entries += day_entries.size();
  retrain_and_score(record);
  record_day_metrics(record);
  days_.push_back(std::move(record));
  ++day_;
}

void StreamingDetector::record_day_metrics(const StreamingDayRecord& record) const {
  static obs::Counter& alerts = obs::metrics().counter("core.streaming.alerts");
  static obs::Counter& retrains = obs::metrics().counter("core.streaming.retrains");
  static obs::Counter& skips = obs::metrics().counter("core.streaming.retrain_skips");
  static obs::Counter& scored = obs::metrics().counter("core.streaming.scored");
  alerts.add(record.alerts);
  scored.add(record.scored);
  if (record.retrained) {
    retrains.add(1);
  } else {
    skips.add(1);
  }
  // One snapshot row per simulated day, exported under "records" in the
  // metrics JSON so faultsim/report outputs can chart the run day by day.
  obs::metrics().append_record(
      "streaming.day", {{"day", static_cast<double>(record.day)},
                        {"entries", static_cast<double>(record.entries)},
                        {"window_entries", static_cast<double>(record.window_entries)},
                        {"kept_domains", static_cast<double>(record.kept_domains)},
                        {"labeled", static_cast<double>(record.labeled)},
                        {"scored", static_cast<double>(record.scored)},
                        {"alerts", static_cast<double>(record.alerts)},
                        {"retrained", record.retrained ? 1.0 : 0.0},
                        {"skipped", record.skip_reason.empty() ? 0.0 : 1.0}});
}

void StreamingDetector::retrain_and_score(StreamingDayRecord& record) {
  // Build this window's behavior model.
  GraphBuilderSink graphs;
  for (const auto& day_entries : window_) {
    for (const auto& entry : day_entries) graphs.on_dns(entry);
  }
  auto model = build_behavior_model(graphs.take_hdbg(), graphs.take_dibg(),
                                    graphs.take_dtbg(), config_.behavior);
  record.kept_domains = model.kept_domains.size();
  if (model.kept_domains.size() < config_.min_train_domains) {
    record.skip_reason = "too-few-domains";  // empty or thin window
    return;
  }

  embed::EmbedConfig ec = config_.embedding;
  ec.dimension = config_.embedding_dimension;
  ec.seed = config_.seed + day_ * 3;
  const auto q = embed::embed_graph(model.query_similarity, ec);
  ec.seed += 1;
  const auto i = embed::embed_graph(model.ip_similarity, ec);
  ec.seed += 1;
  const auto t = embed::embed_graph(model.temporal_similarity, ec);
  const auto combined = embed::EmbeddingMatrix::concat(model.kept_domains, {&q, &i, &t});

  // Labels available today: benign whitelist immediately; malicious only
  // when the threat feed has published the domain (default feed: VT
  // confirmation after label_delay_days; fault sweeps may lag it further).
  intel::LabeledSet labels;
  std::vector<std::string> scorable;
  for (const auto& domain : model.kept_domains) {
    const auto seen = first_seen_.find(domain);
    if (truth_->is_malicious(domain)) {
      if (seen != first_seen_.end() && label_available(domain, seen->second)) {
        labels.domains.push_back(domain);
        labels.labels.push_back(1);
      } else {
        scorable.push_back(domain);  // not yet blacklisted: must be caught
      }
    } else if (truth_->is_known(domain)) {
      labels.domains.push_back(domain);
      labels.labels.push_back(0);
    } else {
      scorable.push_back(domain);
    }
  }
  record.labeled = labels.size();
  if (labels.malicious_count() < config_.min_malicious_labels) {
    record.skip_reason = "too-few-malicious-labels";  // feed lag / blackhole
    return;
  }
  if (labels.malicious_count() == labels.size()) {
    record.skip_reason = "no-benign-labels";
    return;
  }

  const ml::SvmModel svm = ml::train_svm(make_dataset(combined, labels), config_.svm);

  // Calibrate the alert threshold on benign training scores.
  std::vector<double> benign_scores;
  for (std::size_t k = 0; k < labels.size(); ++k) {
    if (labels.labels[k] != 0) continue;
    const auto vec = combined.vector_for(labels.domains[k]);
    std::vector<double> x(vec->begin(), vec->end());
    benign_scores.push_back(svm.decision_value(x));
  }
  if (benign_scores.empty()) {
    record.skip_reason = "no-benign-labels";
    return;
  }
  std::sort(benign_scores.begin(), benign_scores.end());
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(benign_scores.size()) * (1.0 - config_.alert_fpr));
  const double threshold =
      benign_scores[std::min(cut, benign_scores.size() - 1)] + 1e-9;

  // Score the not-yet-blacklisted domains and alert above the threshold.
  record.retrained = true;
  for (const auto& domain : scorable) {
    if (first_flagged_.contains(domain)) continue;
    const auto vec = combined.vector_for(domain);
    std::vector<double> x(vec->begin(), vec->end());
    const double score = svm.decision_value(x);
    ++record.scored;
    if (score > threshold) {
      first_flagged_.emplace(domain, day_);
      alerts_.push_back(DomainAlert{domain, day_, score});
      ++record.alerts;
    }
  }
}

void StreamingDetector::save_checkpoint(std::ostream& out) const {
  out << kCheckpointMagic << '\n';
  out << "day " << day_ << '\n';
  out << "window " << window_.size() << '\n';
  for (const auto& day_entries : window_) {
    out << "day_entries " << day_entries.size() << '\n';
    for (const auto& entry : day_entries) out << dns::format_log_entry(entry) << '\n';
  }
  write_domain_day_map(out, "first_seen", first_seen_);
  write_domain_day_map(out, "first_flagged", first_flagged_);
  out << "alerts " << alerts_.size() << '\n';
  for (const auto& alert : alerts_) {
    out << alert.domain << '\t' << alert.day << '\t' << score_bits_hex(alert.score) << '\n';
  }
  out << "day_records " << days_.size() << '\n';
  for (const auto& record : days_) {
    out << record.day << '\t' << record.entries << '\t' << record.window_entries << '\t'
        << record.kept_domains << '\t' << record.labeled << '\t' << record.scored << '\t'
        << record.alerts << '\t' << (record.retrained ? 1 : 0) << '\t'
        << (record.skip_reason.empty() ? "-" : record.skip_reason) << '\n';
  }
  out << "end\n";
}

void StreamingDetector::load_checkpoint(std::istream& in) {
  if (checkpoint_line(in, "magic") != kCheckpointMagic) {
    throw std::runtime_error{"checkpoint: bad magic / unsupported version"};
  }
  day_ = section_count(checkpoint_line(in, "day"), "day");

  const auto window_days = section_count(checkpoint_line(in, "window"), "window");
  window_.clear();
  for (std::size_t w = 0; w < window_days; ++w) {
    const auto count = section_count(checkpoint_line(in, "day_entries"), "day_entries");
    std::vector<dns::LogEntry> entries;
    entries.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      const auto line = checkpoint_line(in, "log entry");
      auto entry = dns::parse_log_entry(line);
      if (!entry) throw std::runtime_error{"checkpoint: malformed log entry"};
      entries.push_back(*std::move(entry));
    }
    window_.push_back(std::move(entries));
  }

  read_domain_day_map(in, "first_seen", first_seen_);
  read_domain_day_map(in, "first_flagged", first_flagged_);

  const auto alert_count = section_count(checkpoint_line(in, "alerts"), "alerts");
  alerts_.clear();
  alerts_.reserve(alert_count);
  for (std::size_t k = 0; k < alert_count; ++k) {
    const auto line = checkpoint_line(in, "alert");
    const auto fields = split_tabs(line);
    if (fields.size() != 3 || fields[0].empty()) {
      throw std::runtime_error{"checkpoint: bad alert row"};
    }
    alerts_.push_back(DomainAlert{std::string{fields[0]},
                                  parse_size(fields[1], "alert day"),
                                  score_from_hex(fields[2])});
  }

  const auto record_count = section_count(checkpoint_line(in, "day_records"), "day_records");
  days_.clear();
  days_.reserve(record_count);
  for (std::size_t k = 0; k < record_count; ++k) {
    const auto line = checkpoint_line(in, "day record");
    const auto fields = split_tabs(line);
    if (fields.size() != 9) throw std::runtime_error{"checkpoint: bad day record"};
    StreamingDayRecord record;
    record.day = parse_size(fields[0], "record day");
    record.entries = parse_size(fields[1], "record entries");
    record.window_entries = parse_size(fields[2], "record window entries");
    record.kept_domains = parse_size(fields[3], "record kept domains");
    record.labeled = parse_size(fields[4], "record labeled");
    record.scored = parse_size(fields[5], "record scored");
    record.alerts = parse_size(fields[6], "record alerts");
    record.retrained = parse_size(fields[7], "record retrained") != 0;
    if (fields[8] != "-") record.skip_reason = std::string{fields[8]};
    days_.push_back(std::move(record));
  }

  if (checkpoint_line(in, "end") != "end") {
    throw std::runtime_error{"checkpoint: missing end marker"};
  }
}

void StreamingDetector::save_checkpoint_file(const std::string& path) const {
  std::ostringstream payload;
  save_checkpoint(payload);
  util::save_artifact(path, "streaming-checkpoint", payload.str());
}

void StreamingDetector::load_checkpoint_file(const std::string& path) {
  std::istringstream payload{util::load_artifact(path, "streaming-checkpoint")};
  try {
    load_checkpoint(payload);
  } catch (const std::runtime_error& e) {
    util::fsio::note_corrupt_detected();
    throw util::CorruptArtifact{path, e.what()};
  }
}

}  // namespace dnsembed::core
