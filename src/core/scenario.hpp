// Per-scenario detection evaluation: slice the out-of-fold SVM scores of a
// labeled set by campaign archetype (scenario tag) so robustness against
// specific attacker behaviors — zero-day activation, graph evasion, IoT
// background — is a first-class, gateable metric instead of being averaged
// away inside one global AUC.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/clustering.hpp"
#include "intel/labels.hpp"
#include "trace/ground_truth.hpp"

namespace dnsembed::core {

struct ScenarioMetrics {
  std::string scenario;              // archetype tag ("dga-cnc", "zero-day", ...)
  std::size_t labeled = 0;           // labeled malicious domains with this tag
  std::size_t detected = 0;          // of those, scored >= threshold out of fold
  double recall = 0.0;               // detected / labeled
  double precision = 0.0;            // detected / (detected + benign false positives)
  double auc = 0.0;                  // scenario positives vs ALL labeled benign
  bool auc_valid = false;            // false when either side is empty
  // Seed-expansion reach (clusters available only): scenario domains that
  // share a cluster with at least one malicious domain of ANOTHER scenario
  // — i.e. reachable from known-family seeds by cluster expansion. The
  // zero-day acceptance signal: fresh families discoverable without their
  // own labels.
  std::size_t expansion_candidates = 0;
  std::size_t expansion_reached = 0;
};

struct ScenarioEvaluation {
  std::vector<ScenarioMetrics> scenarios;  // deterministic archetype order
  std::size_t benign_labeled = 0;
  std::size_t benign_false_positives = 0;  // benign rows scored >= threshold
};

/// Slice `scores` (row-aligned with `labels`, e.g.
/// DetectionEvaluation::scores.scores) by scenario tag. Tags come from the
/// labeled set when present, else from the ground truth. Scenarios are
/// ordered by FamilyKind enum order with any residual tags sorted last, so
/// report output is byte-stable. Also publishes scenario.* obs gauges.
ScenarioEvaluation evaluate_scenarios(const intel::LabeledSet& labels,
                                      const std::vector<double>& scores,
                                      const trace::GroundTruth& truth,
                                      double threshold = 0.0);

/// Fill ScenarioMetrics::expansion_* from cluster memberships (candidates =
/// clustered malicious domains of the scenario; reached = those whose
/// cluster also holds a malicious seed from a different scenario).
void annotate_seed_expansion(ScenarioEvaluation& evaluation, const ClusteringResult& clusters,
                             const trace::GroundTruth& truth);

}  // namespace dnsembed::core
