// Resumable pipeline runner: drives the paper pipeline (trace -> behavior
// -> embed -> labels -> report) with stage-granular persistence under a
// working directory. Every stage commits its outputs as atomic, checksummed
// artifacts and the run manifest records their digests plus the config
// hash; `--resume` skips stages whose artifacts still validate and re-runs
// anything missing, corrupt, or built under a different config.
//
// Every stage boundary is a disk round-trip even on a fresh run (a stage
// always loads its inputs from the previous stage's artifacts), so an
// interrupted run resumed later produces a bit-identical report to an
// uninterrupted one by construction — there is no separate in-memory fast
// path to diverge from.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/supervisor.hpp"

namespace dnsembed::core {

struct RunOptions {
  /// Directory for artifacts, manifest, and the final report. Created if
  /// missing.
  std::string workdir;

  /// Reuse digest-valid stages recorded in the manifest instead of
  /// recomputing them. Off = recompute everything (but still overwrite
  /// artifacts atomically, so a concurrent reader never sees torn state).
  bool resume = false;

  /// Per-stage wall-clock budget in seconds (0 = unlimited). When a stage
  /// overruns, it is cancelled cooperatively at its next artifact/substep
  /// boundary and run_resumable throws StageDeadlineExceeded; committed
  /// artifacts stay valid, so a later --resume continues from them.
  double stage_deadline_seconds = 0.0;

  /// Test hook: terminate the process (exit 137, as if SIGKILLed) right
  /// after the named artifact file is committed — deterministic mid-stage
  /// crash for the crash-recovery suite. Empty = disabled.
  std::string crash_after_artifact;

  /// Test hook: force the stage deadline to expire right after the named
  /// artifact file is committed — a deterministic mid-stage deadline hit
  /// for the resumability regression test. Empty = disabled.
  std::string expire_deadline_after_artifact;

  /// Multi-process orchestration. supervise.workers == 0 (default) keeps
  /// the single-process path; >= 1 forks stage work out to supervised
  /// worker processes (projection pair-shards, per-channel LINE training)
  /// that exchange results only through checksummed artifacts, so the
  /// report is bit-identical to a single-process run at any worker count.
  /// Workers also write telemetry sidecars (obs/sidecar.hpp) that the
  /// supervisor merges, so --metrics-out/--trace-out see the whole process
  /// tree, and supervise.status_path enables the live --status-out file.
  SupervisorOptions supervise;

  PipelineConfig config;
};

struct RunStageOutcome {
  std::string name;
  /// True when the stage was skipped because its artifacts validated.
  bool resumed = false;
  double seconds = 0.0;
};

struct RunSummary {
  std::vector<RunStageOutcome> stages;
  std::string report_path;
  std::size_t resumed_stages = 0;

  /// What the supervisor did (all zeros on a single-process run).
  SupervisionStats supervision;

  /// Shard tasks that exhausted their retry budget, as recorded in the
  /// manifest — includes quarantines carried forward from a resumed stage.
  /// Non-empty means the report is partial and the CLI exits 5.
  std::vector<std::string> quarantined;
};

/// A stage exceeded RunOptions::stage_deadline_seconds and was cancelled.
class StageDeadlineExceeded : public std::runtime_error {
 public:
  explicit StageDeadlineExceeded(std::string stage);
  const std::string& stage() const noexcept { return stage_; }

 private:
  std::string stage_;
};

/// Digest of the pipeline knobs that shape run artifacts (trace shape and
/// seeds, pruning/projection thresholds, embedding method and budgets,
/// labeling, SVM and clustering parameters). Recorded in the manifest; a
/// mismatch on --resume invalidates every recorded stage.
std::string hash_pipeline_config(const PipelineConfig& config);

/// Run (or resume) the pipeline under options.workdir; returns what ran vs
/// was reused. Throws StageDeadlineExceeded on deadline, util::fsio::IoError
/// on unrecoverable I/O failure.
RunSummary run_resumable(const RunOptions& options);

}  // namespace dnsembed::core
