#include "core/federation.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <unordered_map>

namespace dnsembed::core {

namespace {

/// Union-find over cluster nodes.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

CampusReport make_campus_report(
    std::string campus_name, const ClusteringResult& clustering,
    const std::vector<std::string>& domains, const graph::BipartiteGraph& dibg,
    const std::function<bool(const std::string&)>& is_suspicious,
    double min_suspicious_fraction) {
  (void)domains;  // clusters already carry their member domains
  CampusReport report;
  report.campus = std::move(campus_name);
  for (const auto& cluster : clustering.clusters) {
    if (cluster.domains.empty()) continue;
    std::size_t suspicious = 0;
    for (const auto& d : cluster.domains) suspicious += is_suspicious(d) ? 1 : 0;
    const double fraction =
        static_cast<double>(suspicious) / static_cast<double>(cluster.domains.size());
    if (fraction < min_suspicious_fraction) continue;

    SharedCluster shared;
    shared.cluster_id = cluster.id;
    shared.domains = cluster.domains;
    std::set<std::string> ips;
    for (const auto& d : cluster.domains) {
      if (const auto id = dibg.right_names().find(d)) {
        for (const auto ip : dibg.right_neighbors(*id)) {
          ips.insert(dibg.left_names().name(ip));
        }
      }
    }
    shared.server_ips.assign(ips.begin(), ips.end());
    report.clusters.push_back(std::move(shared));
  }
  return report;
}

std::vector<Campaign> correlate_campuses(const std::vector<CampusReport>& reports,
                                         std::size_t min_campuses) {
  // Flatten clusters; remember owners.
  struct Node {
    const CampusReport* report;
    const SharedCluster* cluster;
  };
  std::vector<Node> nodes;
  for (const auto& report : reports) {
    for (const auto& cluster : report.clusters) nodes.push_back({&report, &cluster});
  }
  DisjointSet dsu{nodes.size()};

  // Unite on shared domains and shared IPs.
  std::unordered_map<std::string, std::size_t> first_with_domain;
  std::unordered_map<std::string, std::size_t> first_with_ip;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const auto& d : nodes[i].cluster->domains) {
      const auto [it, inserted] = first_with_domain.emplace(d, i);
      if (!inserted) dsu.unite(i, it->second);
    }
    for (const auto& ip : nodes[i].cluster->server_ips) {
      const auto [it, inserted] = first_with_ip.emplace(ip, i);
      if (!inserted) dsu.unite(i, it->second);
    }
  }

  // Gather components.
  std::map<std::size_t, std::vector<std::size_t>> components;
  for (std::size_t i = 0; i < nodes.size(); ++i) components[dsu.find(i)].push_back(i);

  std::vector<Campaign> campaigns;
  for (const auto& [root, members] : components) {
    std::set<std::string> campuses;
    std::map<std::string, std::set<std::string>> domain_campuses;
    std::map<std::string, std::set<std::string>> ip_campuses;
    for (const std::size_t i : members) {
      campuses.insert(nodes[i].report->campus);
      for (const auto& d : nodes[i].cluster->domains) {
        domain_campuses[d].insert(nodes[i].report->campus);
      }
      for (const auto& ip : nodes[i].cluster->server_ips) {
        ip_campuses[ip].insert(nodes[i].report->campus);
      }
    }
    if (campuses.size() < min_campuses) continue;

    Campaign campaign;
    campaign.campuses.assign(campuses.begin(), campuses.end());
    for (const auto& [d, seen_by] : domain_campuses) {
      campaign.domains.push_back(d);
      if (seen_by.size() >= 2) campaign.shared_domains.push_back(d);
    }
    for (const auto& [ip, seen_by] : ip_campuses) {
      if (seen_by.size() >= 2) campaign.shared_ips.push_back(ip);
    }
    campaigns.push_back(std::move(campaign));
  }
  std::sort(campaigns.begin(), campaigns.end(), [](const Campaign& a, const Campaign& b) {
    if (a.campuses.size() != b.campuses.size()) return a.campuses.size() > b.campuses.size();
    return a.domains.size() > b.domains.size();
  });
  return campaigns;
}

}  // namespace dnsembed::core
