#include "core/behavior.hpp"

#include <unordered_set>

#include "obs/span.hpp"

namespace dnsembed::core {

GraphBuilderSink::GraphBuilderSink(std::int64_t bucket_seconds, const dns::PublicSuffixList& psl)
    : bucket_seconds_{bucket_seconds}, psl_{&psl} {
  if (bucket_seconds <= 0) {
    throw std::invalid_argument{"GraphBuilderSink: bucket_seconds must be positive"};
  }
}

void GraphBuilderSink::on_dns(const dns::LogEntry& entry) {
  const std::string e2ld = psl_->e2ld_or_self(entry.qname);
  hdbg_.add_edge(entry.host, e2ld);
  dtbg_.add_edge("m" + std::to_string(entry.timestamp / bucket_seconds_), e2ld);
  for (const auto& ip : entry.addresses) {
    dibg_.add_edge(ip.to_string(), e2ld);
  }
}

graph::BipartiteGraph GraphBuilderSink::take_hdbg() {
  hdbg_.finalize();
  return std::move(hdbg_);
}

graph::BipartiteGraph GraphBuilderSink::take_dibg() {
  dibg_.finalize();
  return std::move(dibg_);
}

graph::BipartiteGraph GraphBuilderSink::take_dtbg() {
  dtbg_.finalize();
  return std::move(dtbg_);
}

BehaviorModel build_behavior_model(graph::BipartiteGraph hdbg, graph::BipartiteGraph dibg,
                                   graph::BipartiteGraph dtbg,
                                   const BehaviorModelConfig& config) {
  hdbg.finalize();
  dibg.finalize();
  dtbg.finalize();

  OBS_SPAN("behavior.model");
  // Pruning rules 1-2 are defined on host behavior, i.e. on the HDBG.
  const auto keep_mask = graph::right_degree_keep_mask(hdbg, config.prune);
  std::unordered_set<std::string> kept;
  for (graph::VertexId r = 0; r < hdbg.right_count(); ++r) {
    if (keep_mask[r]) kept.insert(hdbg.right_names().name(r));
  }

  const auto mask_for = [&kept](const graph::BipartiteGraph& g) {
    std::vector<bool> mask(g.right_count(), false);
    for (graph::VertexId r = 0; r < g.right_count(); ++r) {
      mask[r] = kept.contains(g.right_names().name(r));
    }
    return mask;
  };

  BehaviorModel model;
  model.hdbg = hdbg.filter_right(keep_mask);
  model.dibg = dibg.filter_right(mask_for(dibg));
  model.dtbg = dtbg.filter_right(mask_for(dtbg));

  model.kept_domains.reserve(kept.size());
  for (graph::VertexId r = 0; r < model.hdbg.right_count(); ++r) {
    model.kept_domains.push_back(model.hdbg.right_names().name(r));
  }

  {
    OBS_SPAN("behavior.project.query");
    model.query_similarity = graph::project_right(model.hdbg, config.query_projection);
  }
  {
    OBS_SPAN("behavior.project.ip");
    model.ip_similarity = graph::project_right(model.dibg, config.ip_projection);
  }
  {
    OBS_SPAN("behavior.project.temporal");
    model.temporal_similarity = graph::project_right(model.dtbg, config.temporal_projection);
  }
  return model;
}

}  // namespace dnsembed::core
