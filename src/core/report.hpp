// Operator-facing markdown report: summarizes a detection run — traffic
// volume, graph sizes, cross-validated quality per feature channel, the
// most suspicious clusters with sample domains, and their netflow
// patterns. Rendered by the CLI `report` subcommand and usable as a
// library call.
#pragma once

#include <iosfwd>

#include "core/clustering.hpp"
#include "core/pipeline.hpp"
#include "core/supervisor.hpp"

namespace dnsembed::core {

struct ReportOptions {
  std::size_t top_clusters = 5;
  std::size_t sample_domains = 6;
  /// Domains with detector scores above this count as "flagged".
  double score_threshold = 0.0;
};

/// Write the report as markdown. `evals` and `clusters` may be partial
/// results of the same pipeline run; ground-truth columns are included
/// only when the trace carries a truth registry (simulation runs).
void write_detection_report(std::ostream& out, const PipelineResult& result,
                            const ChannelEvaluations& evals,
                            const ClusteringResult& clusters,
                            const ReportOptions& options = {});

/// Markdown "Worker resources" table from the supervisor's per-task wait4
/// accounting (attempts, wall, cpu user/sys, max RSS). Rendered to the
/// CLI's stdout and mirrored by the --status-out file — deliberately NOT
/// part of report.md, which must stay byte-identical between supervised
/// and single-process runs. No-op when no task ran.
void write_worker_resources(std::ostream& out, const SupervisionStats& stats);

}  // namespace dnsembed::core
