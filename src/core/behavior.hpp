// Behavioral modeling (paper §4): consume the DNS event stream into the
// three bipartite graphs — host x domain (HDBG), IP x domain (DIBG),
// minute x domain (DTBG) — aggregate names to e2LDs, apply the pruning
// rules, and project onto the domain side to obtain the three Jaccard
// similarity graphs (Eq. 1-3).
//
// Convention: domains are always the RIGHT vertex set, so project_right()
// yields domain similarity for all three graphs.
#pragma once

#include <string>
#include <vector>

#include "dns/log_record.hpp"
#include "dns/public_suffix.hpp"
#include "graph/bipartite.hpp"
#include "graph/projection.hpp"
#include "graph/stats.hpp"
#include "graph/weighted_graph.hpp"
#include "trace/sink.hpp"

namespace dnsembed::core {

/// Streaming sink that accumulates the three bipartite graphs.
class GraphBuilderSink final : public trace::TraceSink {
 public:
  /// Time-bucket width for the DTBG (paper: one minute).
  explicit GraphBuilderSink(std::int64_t bucket_seconds = 60,
                            const dns::PublicSuffixList& psl = dns::PublicSuffixList::builtin());

  void on_dns(const dns::LogEntry& entry) override;

  /// Finalize and take the graphs (call once, after the stream ends).
  graph::BipartiteGraph take_hdbg();
  graph::BipartiteGraph take_dibg();
  graph::BipartiteGraph take_dtbg();

 private:
  std::int64_t bucket_seconds_;
  const dns::PublicSuffixList* psl_;
  graph::BipartiteGraph hdbg_;  // host x e2LD
  graph::BipartiteGraph dibg_;  // IP x e2LD
  graph::BipartiteGraph dtbg_;  // minute-bucket x e2LD
};

struct BehaviorModelConfig {
  graph::DegreePruneOptions prune;          // paper's rules 1-2
  graph::ProjectionOptions query_projection;
  graph::ProjectionOptions ip_projection;
  graph::ProjectionOptions temporal_projection;
};

/// The pruned graphs plus the three domain similarity graphs. All four
/// domain-indexed structures share the same vertex set (kept_domains), but
/// vertex ids are per-graph.
struct BehaviorModel {
  std::vector<std::string> kept_domains;
  graph::BipartiteGraph hdbg;
  graph::BipartiteGraph dibg;
  graph::BipartiteGraph dtbg;
  graph::WeightedGraph query_similarity;
  graph::WeightedGraph ip_similarity;
  graph::WeightedGraph temporal_similarity;
};

/// Prune (host-degree rules computed on the HDBG, applied to every graph)
/// and project. Consumes the graphs.
BehaviorModel build_behavior_model(graph::BipartiteGraph hdbg, graph::BipartiteGraph dibg,
                                   graph::BipartiteGraph dtbg,
                                   const BehaviorModelConfig& config);

}  // namespace dnsembed::core
