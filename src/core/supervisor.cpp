#include "core/supervisor.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "fault/process_faults.hpp"
#include "obs/metrics.hpp"
#include "obs/sidecar.hpp"
#include "obs/span.hpp"
#include "util/artifact.hpp"
#include "util/fsio.hpp"
#include "util/log.hpp"
#include "util/subprocess.hpp"

namespace dnsembed::core {

namespace {

using Clock = std::chrono::steady_clock;

/// Retry schedule for failed task attempts: the fsio backoff machinery
/// (bounded exponential + deterministic jitter keyed by task name) with
/// process-scale constants — 20ms, x4, capped at 2s.
util::fsio::RetryPolicy task_retry_policy(std::size_t max_retries) {
  util::fsio::RetryPolicy policy;
  policy.max_attempts = max_retries + 1;
  policy.initial_backoff = std::chrono::microseconds{20'000};
  policy.multiplier = 4.0;
  policy.max_backoff = std::chrono::microseconds{2'000'000};
  return policy;
}

// ------------------------------------------------------------ heartbeats
//
// A heartbeat is a tiny plain file the child overwrites with an increasing
// sequence number. Plain POSIX writes on purpose: heartbeats are advisory
// liveness signals, not durable state, so they skip fsio (no fsync cost, no
// injected-fault interference) and the reader only cares whether the
// content CHANGED since it last looked.

void write_heartbeat(const std::string& path, std::uint64_t beat) {
  const std::string text = "beat " + std::to_string(beat) + "\n";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return;  // best effort; a missing heartbeat reads as stale
  (void)!::write(fd, text.data(), text.size());
  ::close(fd);
}

std::string read_heartbeat(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return {};
  char buf[64];
  const ssize_t n = ::read(fd, buf, sizeof(buf));
  ::close(fd);
  return n > 0 ? std::string(buf, static_cast<std::size_t>(n)) : std::string{};
}

/// Unlink every regular file directly under `dir` (scratch holds no
/// subdirectories).
void wipe_directory(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    ::unlink((dir + "/" + name).c_str());
  }
  ::closedir(d);
}

// ------------------------------------------------------------ child side

bool has_container_output(const WorkerTask& task) {
  for (const auto& output : task.outputs) {
    if (output.kind != nullptr) return true;
  }
  return false;
}

/// The forked child's whole life: decide the injected fault, keep the
/// heartbeat fresh on a side thread, run the task body, flush the telemetry
/// sidecar, exit.
int run_child(const WorkerTask& task, std::size_t attempt, const SupervisorOptions& options,
              const std::string& heartbeat_path, const std::string& sidecar_path) {
  // The fork inherited the parent's accumulated metrics and spans; drop
  // them so the sidecar carries exactly this attempt's telemetry (clear()
  // also re-arms the span epoch, which is what the parent's rebase offset
  // assumes).
  obs::metrics().reset_values();
  obs::SpanRecorder::instance().clear();
  const bool telemetry = obs::metrics_enabled() || obs::trace_enabled();
  const fault::ProcessFaultChannel channel{options.process_faults};
  auto injected = channel.decide(task.name, attempt);
  // Garbage needs a validatable container to be caught through; a task
  // with only plain-file outputs escalates the draw to a crash so the
  // fault never goes unnoticed.
  if (injected == fault::ProcessFault::kGarbage && !has_container_output(task)) {
    injected = fault::ProcessFault::kCrash;
  }
  write_heartbeat(heartbeat_path, 0);
  if (injected == fault::ProcessFault::kCrash) {
    util::log_warn() << "worker " << task.name << ": injected crash (attempt " << attempt
                     << ")";
    std::_Exit(137);
  }
  if (injected == fault::ProcessFault::kHang) {
    util::log_warn() << "worker " << task.name << ": injected hang (attempt " << attempt
                     << ")";
    for (;;) std::this_thread::sleep_for(std::chrono::hours{1});
  }

  std::atomic<bool> stop{false};
  const auto interval = std::chrono::duration<double>{options.heartbeat_interval_seconds};
  std::thread beat{[&] {
    std::uint64_t n = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(interval);
      if (stop.load(std::memory_order_relaxed)) break;
      write_heartbeat(heartbeat_path, n++);
      if (telemetry) {
        // Periodic metrics-only flush so the on-disk sidecar is at most one
        // heartbeat stale if this attempt is SIGKILLed or hits a deadline.
        // Spans are excluded here — the body's threads are still recording
        // into unlocked thread-local buffers — and picked up by the final
        // flush below once everything is joined.
        try {
          obs::write_telemetry_sidecar(sidecar_path, /*include_spans=*/false);
        } catch (const std::exception&) {
          // Best effort: a failed advisory flush must not kill the attempt.
        }
      }
    }
  }};

  int rc = 0;
  try {
    // Root span of this worker's trace lane: even a body that opens no
    // spans of its own exports one event covering the task's wall time, so
    // the merged trace always shows one named pid lane per worker task.
    obs::Span task_span{task.name.c_str()};
    if (injected == fault::ProcessFault::kGarbage) {
      util::log_warn() << "worker " << task.name << ": injected garbage output (attempt "
                       << attempt << ")";
      for (const auto& output : task.outputs) {
        if (output.kind == nullptr) continue;
        util::fsio::atomic_write_file(output.path,
                                      "garbage-output " + task.name + "\n");
      }
    } else {
      task.body();
    }
  } catch (const std::exception& e) {
    util::log_error() << "worker " << task.name << ": " << e.what();
    rc = 1;
  }
  stop.store(true, std::memory_order_relaxed);
  beat.join();
  if (telemetry) {
    try {
      obs::write_telemetry_sidecar(sidecar_path, /*include_spans=*/true);
    } catch (const std::exception& e) {
      util::log_warn() << "worker " << task.name << ": telemetry sidecar write failed: "
                       << e.what();
    }
  }
  return rc;
}

// ------------------------------------------------------- output checking

bool outputs_valid(const WorkerTask& task, std::string& why) {
  for (const auto& output : task.outputs) {
    if (output.kind == nullptr) {
      if (!util::fsio::file_exists(output.path)) {
        why = output.path + ": missing";
        return false;
      }
      continue;
    }
    try {
      util::validate_artifact_bytes(util::fsio::read_file(output.path), output.kind,
                                    output.path);
    } catch (const util::CorruptArtifact& e) {
      why = e.path() + ": " + e.reason();
      return false;
    } catch (const util::fsio::IoError& e) {
      why = e.what();
      return false;
    }
  }
  return true;
}

}  // namespace

SupervisorError::SupervisorError(std::string task, const std::string& detail)
    : std::runtime_error{"supervisor: task '" + task + "' failed permanently: " + detail},
      task_{std::move(task)} {}

Supervisor::Supervisor(std::string workdir, SupervisorOptions options)
    : workdir_{std::move(workdir)}, options_{options} {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.heartbeat_interval_seconds <= 0.0) options_.heartbeat_interval_seconds = 0.25;
  if (options_.heartbeat_timeout_seconds <= 0.0) {
    options_.heartbeat_timeout_seconds = 10.0 * options_.heartbeat_interval_seconds;
  }
  if (options_.projection_shards == 0) options_.projection_shards = 1;
}

std::string Supervisor::scratch_path(const std::string& file) const {
  return workdir_ + "/sv/" + file;
}

void Supervisor::reset_scratch(const std::string& config_hash, bool resume) {
  util::fsio::create_directories(workdir_ + "/sv");
  const auto hash_path = scratch_path("config.hash");
  bool keep = resume;
  if (keep) {
    try {
      keep = util::fsio::read_file(hash_path) == config_hash;
    } catch (const util::fsio::IoError&) {
      keep = false;
    }
    if (!keep) {
      util::log_info() << "supervisor: scratch built under a different config; wiping";
    }
  }
  if (!keep) {
    wipe_directory(workdir_ + "/sv");
    util::fsio::atomic_write_file(hash_path, config_hash);
  }
}

TaskResources& Supervisor::resources_for(const std::string& task) {
  for (auto& row : stats_.resources) {
    if (row.task == task) return row;
  }
  stats_.resources.push_back(TaskResources{});
  stats_.resources.back().task = task;
  return stats_.resources.back();
}

Supervisor::TaskStatus& Supervisor::status_row(const std::string& task) {
  for (auto& row : status_) {
    if (row.task == task) return row;
  }
  status_.push_back(TaskStatus{});
  status_.back().task = task;
  status_.back().state = "pending";
  return status_.back();
}

void Supervisor::set_status(const std::string& task, const char* state, std::size_t attempt,
                            std::int64_t heartbeat_age_ms) {
  auto& row = status_row(task);
  row.state = state;
  row.attempt = attempt;
  row.heartbeat_age_ms = heartbeat_age_ms;
  status_dirty_ = true;
}

void Supervisor::write_status(bool force) {
  if (options_.status_path.empty()) return;
  const auto now = Clock::now();
  if (!force && !status_dirty_ &&
      std::chrono::duration<double>(now - last_status_write_).count() <
          options_.heartbeat_interval_seconds) {
    return;
  }
  std::ostringstream out;
  out << "{\n  \"workers\": " << options_.workers << ",\n  \"tasks\": [";
  for (std::size_t i = 0; i < status_.size(); ++i) {
    const auto& row = status_[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"task\": \"" << row.task << "\", \"state\": \""
        << row.state << "\", \"attempt\": " << row.attempt
        << ", \"heartbeat_age_ms\": " << row.heartbeat_age_ms << ", \"quarantined\": "
        << (row.state == "quarantined" ? "true" : "false");
    for (const auto& res : stats_.resources) {
      if (res.task != row.task) continue;
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    ", \"attempts_reaped\": %zu, \"wall_seconds\": %.3f"
                    ", \"cpu_user_seconds\": %.3f, \"cpu_system_seconds\": %.3f"
                    ", \"max_rss_kb\": %ld",
                    res.attempts, res.wall_seconds, res.cpu_user_seconds,
                    res.cpu_system_seconds, res.max_rss_kb);
      out << buf;
      break;
    }
    out << "}";
  }
  out << (status_.empty() ? "]\n" : "\n  ]\n") << "}\n";
  // Plain-POSIX temp + rename (the heartbeat idiom): the status file is an
  // advisory view for operators, so it skips fsio's fsync cost and fault
  // injection, but readers still never observe a torn write.
  const std::string text = out.str();
  const std::string tmp = options_.status_path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return;
  (void)!::write(fd, text.data(), text.size());
  ::close(fd);
  ::rename(tmp.c_str(), options_.status_path.c_str());
  status_dirty_ = false;
  last_status_write_ = now;
}

void Supervisor::run_tasks(const std::vector<WorkerTask>& tasks,
                           const std::function<void()>& poll) {
  static obs::Counter& restarts_counter = obs::metrics().counter("supervisor.restarts");
  static obs::Counter& crashes_counter = obs::metrics().counter("supervisor.crashes");
  static obs::Counter& hangs_counter = obs::metrics().counter("supervisor.hangs_killed");
  static obs::Counter& corrupt_counter = obs::metrics().counter("supervisor.corrupt_outputs");
  static obs::Counter& quarantined_counter = obs::metrics().counter("supervisor.quarantined");
  static obs::Counter& run_counter = obs::metrics().counter("supervisor.tasks.run");
  static obs::Counter& reused_counter = obs::metrics().counter("supervisor.tasks.reused");
  static obs::Counter& sidecar_corrupt_counter =
      obs::metrics().counter("supervisor.sidecar_corrupt");
  static obs::Histogram& heartbeat_hist = obs::metrics().histogram(
      "supervisor.heartbeat_age_ms", obs::Registry::size_bounds());
  static obs::Histogram& task_cpu_hist =
      obs::metrics().latency_histogram("supervisor.task.cpu_seconds");
  static obs::Histogram& task_wall_hist =
      obs::metrics().latency_histogram("supervisor.task.wall_seconds");
  static obs::Histogram& task_rss_hist = obs::metrics().histogram(
      "supervisor.task.max_rss_kb", obs::Registry::size_bounds());
  obs::metrics().gauge("supervisor.workers").set(static_cast<std::int64_t>(options_.workers));

  const auto policy = task_retry_policy(options_.max_retries);
  const auto heartbeat_timeout =
      std::chrono::duration<double>{options_.heartbeat_timeout_seconds};

  struct TaskState {
    std::size_t failures = 0;
    bool done = false;
    bool quarantined = false;
    bool running = false;
    Clock::time_point eligible = Clock::now();
  };
  struct InFlight {
    std::size_t index = 0;
    std::size_t attempt = 0;
    util::ChildProcess child;
    Clock::time_point spawned;
    std::string heartbeat;
    Clock::time_point heartbeat_changed;
    std::uint64_t span_begin = 0;
    std::uint64_t span_seq = 0;
  };

  std::vector<TaskState> state(tasks.size());
  std::vector<InFlight> running;
  running.reserve(options_.workers);

  // Scratch reuse: a reusable task whose outputs already validate (partials
  // from an interrupted supervised run, gated by the scratch config hash)
  // is finished before anything is forked.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    std::string why;
    if (tasks[i].reusable && outputs_valid(tasks[i], why)) {
      state[i].done = true;
      ++stats_.tasks_reused;
      reused_counter.add(1);
      util::log_info() << "supervisor: task '" << tasks[i].name
                       << "' reused from scratch artifacts";
    }
    set_status(tasks[i].name, state[i].done ? "reused" : "pending", 0, -1);
  }
  write_status(false);

  /// One attempt of task `i` ended badly; schedule a retry or quarantine.
  const auto failed = [&](std::size_t i, const std::string& detail) {
    auto& ts = state[i];
    ts.running = false;
    ++ts.failures;
    if (ts.failures > options_.max_retries) {
      if (!tasks[i].quarantinable) throw SupervisorError{tasks[i].name, detail};
      ts.quarantined = true;
      stats_.quarantined.push_back(tasks[i].name);
      quarantined_counter.add(1);
      set_status(tasks[i].name, "quarantined", ts.failures, -1);
      util::log_warn() << "supervisor: task '" << tasks[i].name << "' quarantined after "
                       << ts.failures << " failed attempts (" << detail << ")";
      return;
    }
    const auto delay = util::fsio::backoff_delay(policy, tasks[i].name, ts.failures - 1);
    ts.eligible = Clock::now() + delay;
    ++stats_.restarts;
    restarts_counter.add(1);
    set_status(tasks[i].name, "backoff", ts.failures, -1);
    util::log_warn() << "supervisor: task '" << tasks[i].name << "' attempt " << ts.failures
                     << " failed (" << detail << "); retrying in "
                     << static_cast<double>(delay.count()) / 1000.0 << "ms";
  };

  /// Per-attempt resource accounting from the wait4 rusage of a reaped
  /// child (every attempt counts, failed ones included).
  const auto account = [&](const InFlight& flight, const util::ExitStatus& status) {
    const double wall =
        std::chrono::duration<double>(Clock::now() - flight.spawned).count();
    auto& res = resources_for(tasks[flight.index].name);
    ++res.attempts;
    res.wall_seconds += wall;
    res.cpu_user_seconds += status.cpu_user_seconds;
    res.cpu_system_seconds += status.cpu_system_seconds;
    res.max_rss_kb = std::max(res.max_rss_kb, status.max_rss_kb);
    task_cpu_hist.observe(status.cpu_user_seconds + status.cpu_system_seconds);
    task_wall_hist.observe(wall);
    task_rss_hist.observe(static_cast<double>(status.max_rss_kb));
  };

  // Worker records accumulate per batch and are appended after it
  // completes: children finish in nondeterministic order, but the merged
  // registry must list records in deterministic (task, seq) order.
  std::vector<std::pair<std::string, std::vector<obs::MetricRecord>>> worker_records;

  /// Fold a successful worker's telemetry sidecar into this process's
  /// registry/recorder. A corrupt or unreadable sidecar costs only that
  /// worker's telemetry — warn, count, continue; never abort the merge.
  const auto merge_sidecar = [&](const InFlight& flight, const WorkerTask& task) {
    if (!obs::metrics_enabled() && !obs::trace_enabled()) return;
    const auto path = scratch_path("tm." + task.name);
    try {
      const auto sidecar = obs::load_telemetry_sidecar(path);
      if (obs::metrics_enabled()) {
        obs::merge_sidecar_metrics(sidecar);
        if (!sidecar.records.empty()) {
          worker_records.emplace_back(task.name, sidecar.records);
        }
      }
      if (obs::trace_enabled() && !sidecar.spans.empty()) {
        // The child's span epoch re-armed at run_child entry, so its times
        // are relative to (approximately) the moment we spawned it: rebase
        // by the spawn-time span offset to land the lane on our timeline.
        auto spans = sidecar.spans;
        for (auto& event : spans) {
          event.begin_ns += flight.span_begin;
          event.end_ns += flight.span_begin;
        }
        obs::SpanRecorder::instance().add_process_lane(task.name, std::move(spans));
      }
    } catch (const util::CorruptArtifact& e) {
      sidecar_corrupt_counter.add(1);
      util::log_warn() << "supervisor: telemetry sidecar for '" << task.name << "' corrupt ("
                       << e.reason() << "); worker telemetry dropped";
    } catch (const util::fsio::IoError& e) {
      util::log_warn() << "supervisor: telemetry sidecar for '" << task.name
                       << "' unreadable; worker telemetry dropped (" << e.what() << ")";
    }
  };

  /// A reaped child for slot `f`: classify success / crash / corrupt.
  const auto reaped = [&](InFlight& flight, const util::ExitStatus& status) {
    auto& task = tasks[flight.index];
    account(flight, status);
    if (obs::trace_enabled()) {
      auto& recorder = obs::SpanRecorder::instance();
      recorder.record("supervisor." + task.name, flight.span_begin, recorder.now_ns(),
                      flight.span_seq);
    }
    if (!status.success()) {
      ++stats_.crashes;
      crashes_counter.add(1);
      failed(flight.index,
             std::string{status.signaled ? "killed by signal, status " : "exit "} +
                 std::to_string(status.code));
      return;
    }
    std::string why;
    if (!outputs_valid(task, why)) {
      util::fsio::note_corrupt_detected();
      ++stats_.corrupt_outputs;
      corrupt_counter.add(1);
      failed(flight.index, "corrupt output: " + why);
      return;
    }
    state[flight.index].running = false;
    state[flight.index].done = true;
    ++stats_.tasks_run;
    run_counter.add(1);
    set_status(task.name, "done", flight.attempt + 1, -1);
    merge_sidecar(flight, task);
  };

  try {
    for (;;) {
      poll();  // stage-deadline watchdog; may throw

      // Reap / watch children. swap-erase keeps the scan O(in-flight).
      const auto now = Clock::now();
      std::int64_t max_age_ms = 0;
      for (std::size_t f = 0; f < running.size();) {
        auto& flight = running[f];
        if (const auto status = flight.child.try_wait()) {
          reaped(flight, *status);
          running[f] = std::move(running.back());
          running.pop_back();
          continue;
        }
        const auto beat = read_heartbeat(scratch_path("hb." + tasks[flight.index].name));
        if (beat != flight.heartbeat) {
          flight.heartbeat = beat;
          flight.heartbeat_changed = now;
        }
        const auto age = std::chrono::duration<double>{now - flight.heartbeat_changed};
        const auto age_ms = static_cast<std::int64_t>(age.count() * 1000.0);
        max_age_ms = std::max(max_age_ms, age_ms);
        status_row(tasks[flight.index].name).heartbeat_age_ms = age_ms;
        if (age >= heartbeat_timeout) {
          util::log_warn() << "supervisor: task '" << tasks[flight.index].name
                           << "' heartbeat stale for " << age.count() << "s; killing";
          flight.child.kill();
          account(flight, flight.child.wait());
          ++stats_.hangs_killed;
          hangs_counter.add(1);
          if (obs::trace_enabled()) {
            auto& recorder = obs::SpanRecorder::instance();
            recorder.record("supervisor." + tasks[flight.index].name, flight.span_begin,
                            recorder.now_ns(), flight.span_seq);
          }
          failed(flight.index, "hung (stale heartbeat)");
          running[f] = std::move(running.back());
          running.pop_back();
          continue;
        }
        ++f;
      }
      // Sampled every poll tick while children are in flight, so the
      // export carries a p99-capable staleness distribution instead of a
      // last-write gauge.
      if (!running.empty()) heartbeat_hist.observe(static_cast<double>(max_age_ms));
      write_status(false);

      // Spawn ready tasks into free slots, in task order (start order is
      // deterministic; completion order is not, and does not matter —
      // artifacts are deterministic and merges re-sort).
      for (std::size_t i = 0; i < tasks.size() && running.size() < options_.workers; ++i) {
        auto& ts = state[i];
        if (ts.done || ts.quarantined || ts.running) continue;
        if (ts.eligible > Clock::now()) continue;
        const std::size_t attempt = ts.failures;
        const auto heartbeat_path = scratch_path("hb." + tasks[i].name);
        write_heartbeat(heartbeat_path, 0);
        InFlight flight;
        flight.index = i;
        flight.attempt = attempt;
        flight.spawned = Clock::now();
        flight.heartbeat = read_heartbeat(heartbeat_path);
        flight.heartbeat_changed = flight.spawned;
        if (obs::trace_enabled()) {
          auto& recorder = obs::SpanRecorder::instance();
          flight.span_begin = recorder.now_ns();
          flight.span_seq = recorder.next_seq();
        }
        try {
          const WorkerTask* task = &tasks[i];
          const SupervisorOptions* options = &options_;
          const auto sidecar_path = scratch_path("tm." + tasks[i].name);
          flight.child = util::ChildProcess::spawn(
              [task, attempt, options, heartbeat_path, sidecar_path] {
                return run_child(*task, attempt, *options, heartbeat_path, sidecar_path);
              });
        } catch (const std::system_error& e) {
          failed(i, std::string{"fork: "} + e.what());
          continue;
        }
        ts.running = true;
        set_status(tasks[i].name, "running", attempt + 1, 0);
        running.push_back(std::move(flight));
      }

      if (running.empty()) {
        bool pending = false;
        for (const auto& ts : state) pending = pending || !(ts.done || ts.quarantined);
        if (!pending) break;
        // Nothing in flight but tasks remain: they are backing off; keep
        // polling until the earliest becomes eligible.
      }
      std::this_thread::sleep_for(std::chrono::milliseconds{5});
    }
  } catch (...) {
    for (auto& flight : running) {
      flight.child.kill();
      flight.child.wait();
    }
    throw;
  }

  // Deferred record merge (see worker_records above): task-name order, and
  // within a task the worker's own append order — i.e. (task, seq).
  std::sort(worker_records.begin(), worker_records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [task_name, records] : worker_records) {
    for (auto& record : records) {
      obs::metrics().append_record(record.name, std::move(record.fields));
    }
  }
  write_status(true);
}

}  // namespace dnsembed::core
