// Online deployment mode: a sliding-window detector retrained daily, with
// a realistic blacklist lag — a malicious domain only enters the training
// labels `label_delay_days` after it is first seen (threat feeds lag).
// Domains flagged before their blacklist entry exists are early detections,
// the operational win the paper's intro promises ("detecting ... during the
// very early stage of their operations").
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/behavior.hpp"
#include "dns/log_record.hpp"
#include "embed/embedder.hpp"
#include "intel/virustotal.hpp"
#include "ml/svm.hpp"

namespace dnsembed::core {

struct StreamingConfig {
  /// Sliding window over which graphs are built.
  std::size_t window_days = 3;
  /// Days between first sighting of a malicious domain and its appearance
  /// in the training blacklist.
  std::size_t label_delay_days = 2;
  /// Alert threshold: the score quantile of *benign-labeled* training
  /// domains that may be exceeded (false-positive budget).
  double alert_fpr = 0.01;

  BehaviorModelConfig behavior;
  std::size_t embedding_dimension = 24;
  embed::EmbedConfig embedding;
  ml::SvmConfig svm;
  std::uint64_t seed = 1;

  StreamingConfig() {
    behavior.query_projection.min_similarity = 0.1;
    behavior.ip_projection.min_similarity = 0.1;
    behavior.temporal_projection.min_similarity = 0.1;
    embedding.line.total_samples = 1'500'000;
    embedding.line.threads = 2;
    svm.c = 1.0;
    svm.gamma = 0.5;
  }
};

struct DomainAlert {
  std::string domain;
  std::size_t day = 0;  // day index on which the alert fired
  double score = 0.0;
};

/// Feed one day of traffic at a time; the detector rebuilds its window
/// graphs, re-embeds, retrains on the labels available *as of that day*,
/// and raises alerts for unflagged domains scoring above the calibrated
/// threshold.
class StreamingDetector {
 public:
  /// `truth`/`vt` stand in for the operator's threat feed: a malicious
  /// domain becomes a label once VT-confirmed AND older than the delay.
  StreamingDetector(StreamingConfig config, const trace::GroundTruth& truth,
                    const intel::VirusTotalSim& vt);

  /// Process one day's entries (day indices must be fed in order).
  void advance_day(const std::vector<dns::LogEntry>& entries);

  std::size_t days_processed() const noexcept { return day_; }
  const std::vector<DomainAlert>& alerts() const noexcept { return alerts_; }

  /// First day each domain was seen / flagged (flagged only if alerted).
  const std::unordered_map<std::string, std::size_t>& first_seen() const noexcept {
    return first_seen_;
  }
  const std::unordered_map<std::string, std::size_t>& first_flagged() const noexcept {
    return first_flagged_;
  }

 private:
  void retrain_and_score();

  StreamingConfig config_;
  const trace::GroundTruth* truth_;
  const intel::VirusTotalSim* vt_;
  const dns::PublicSuffixList* psl_;
  std::size_t day_ = 0;
  std::deque<std::vector<dns::LogEntry>> window_;
  std::unordered_map<std::string, std::size_t> first_seen_;   // by e2LD
  std::unordered_map<std::string, std::size_t> first_flagged_;
  std::vector<DomainAlert> alerts_;
};

}  // namespace dnsembed::core
