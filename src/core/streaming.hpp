// Online deployment mode: a sliding-window detector retrained daily, with
// a realistic blacklist lag — a malicious domain only enters the training
// labels `label_delay_days` after it is first seen (threat feeds lag).
// Domains flagged before their blacklist entry exists are early detections,
// the operational win the paper's intro promises ("detecting ... during the
// very early stage of their operations").
//
// The detector is restartable: save_checkpoint() serializes the sliding
// window and all bookkeeping, and a freshly constructed detector that
// load_checkpoint()s the same state resumes the stream bit-identically
// (same alerts, same scores) — a crash or redeploy loses nothing.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/behavior.hpp"
#include "dns/log_record.hpp"
#include "embed/embedder.hpp"
#include "intel/virustotal.hpp"
#include "ml/svm.hpp"

namespace dnsembed::core {

struct StreamingConfig {
  /// Sliding window over which graphs are built.
  std::size_t window_days = 3;
  /// Days between first sighting of a malicious domain and its appearance
  /// in the training blacklist.
  std::size_t label_delay_days = 2;
  /// Alert threshold: the score quantile of *benign-labeled* training
  /// domains that may be exceeded (false-positive budget).
  double alert_fpr = 0.01;

  /// Degradation guards: a day retrains only when the window yields at
  /// least this many modeled domains / confirmed malicious labels — thin
  /// or empty days are recorded (day_records()) and skipped instead of
  /// producing a degenerate model.
  std::size_t min_train_domains = 20;
  std::size_t min_malicious_labels = 5;

  /// Optional threat-feed override, e.g. fault::make_faulty_label_feed:
  /// called as (domain, first_seen_day, today) and returns whether the
  /// feed has published `domain` as of `today`. When unset, the default
  /// feed is VT confirmation after label_delay_days.
  std::function<bool(std::string_view, std::size_t, std::size_t)> label_feed;

  BehaviorModelConfig behavior;
  std::size_t embedding_dimension = 24;
  embed::EmbedConfig embedding;
  ml::SvmConfig svm;
  std::uint64_t seed = 1;

  StreamingConfig() {
    behavior.query_projection.min_similarity = 0.1;
    behavior.ip_projection.min_similarity = 0.1;
    behavior.temporal_projection.min_similarity = 0.1;
    embedding.line.total_samples = 1'500'000;
    embedding.line.threads = 2;
    svm.c = 1.0;
    svm.gamma = 0.5;
  }
};

struct DomainAlert {
  std::string domain;
  std::size_t day = 0;  // day index on which the alert fired
  double score = 0.0;
};

/// Per-day observability record: what the detector did with each day's
/// traffic, including why a retrain was skipped (degradation audit trail).
struct StreamingDayRecord {
  std::size_t day = 0;
  std::size_t entries = 0;         // entries fed for this day
  std::size_t window_entries = 0;  // entries across the whole window
  std::size_t kept_domains = 0;    // domains surviving graph pruning
  std::size_t labeled = 0;         // labels available that day
  std::size_t scored = 0;          // unlabeled domains scored
  std::size_t alerts = 0;          // alerts raised that day
  bool retrained = false;
  std::string skip_reason;         // empty when retrained
};

/// Feed one day of traffic at a time; the detector rebuilds its window
/// graphs, re-embeds, retrains on the labels available *as of that day*,
/// and raises alerts for unflagged domains scoring above the calibrated
/// threshold.
class StreamingDetector {
 public:
  /// `truth`/`vt` stand in for the operator's threat feed: a malicious
  /// domain becomes a label once VT-confirmed AND older than the delay.
  StreamingDetector(StreamingConfig config, const trace::GroundTruth& truth,
                    const intel::VirusTotalSim& vt);

  /// Process one day's entries (day indices must be fed in order).
  void advance_day(const std::vector<dns::LogEntry>& entries);

  std::size_t days_processed() const noexcept { return day_; }
  const std::vector<DomainAlert>& alerts() const noexcept { return alerts_; }
  const std::vector<StreamingDayRecord>& day_records() const noexcept { return days_; }

  /// First day each domain was seen / flagged (flagged only if alerted).
  const std::unordered_map<std::string, std::size_t>& first_seen() const noexcept {
    return first_seen_;
  }
  const std::unordered_map<std::string, std::size_t>& first_flagged() const noexcept {
    return first_flagged_;
  }

  /// Serialize the detector state (day index, window entries, first-seen /
  /// first-flagged maps, alerts, day records) as a versioned text
  /// checkpoint. Scores round-trip by bit pattern, so a restored detector
  /// continues bit-identically.
  void save_checkpoint(std::ostream& out) const;

  /// Restore state saved by save_checkpoint into this detector (construct
  /// it with the same config/truth/vt as the saving run). Throws
  /// std::runtime_error on a malformed or version-mismatched checkpoint.
  void load_checkpoint(std::istream& in);

  /// Durable checkpoint persistence (kind "streaming-checkpoint"): the text
  /// form above wrapped in an atomic, checksummed artifact container, so a
  /// crash mid-save never destroys the previous checkpoint and damage
  /// surfaces as util::CorruptArtifact instead of a half-restored detector.
  void save_checkpoint_file(const std::string& path) const;
  void load_checkpoint_file(const std::string& path);

 private:
  bool label_available(const std::string& domain, std::size_t first_seen_day) const;
  void retrain_and_score(StreamingDayRecord& record);
  void record_day_metrics(const StreamingDayRecord& record) const;

  StreamingConfig config_;
  const trace::GroundTruth* truth_;
  const intel::VirusTotalSim* vt_;
  const dns::PublicSuffixList* psl_;
  std::size_t day_ = 0;
  std::deque<std::vector<dns::LogEntry>> window_;
  std::unordered_map<std::string, std::size_t> first_seen_;   // by e2LD
  std::unordered_map<std::string, std::size_t> first_flagged_;
  std::vector<DomainAlert> alerts_;
  std::vector<StreamingDayRecord> days_;
};

}  // namespace dnsembed::core
