// End-to-end pipeline façade (paper Fig. 2): trace -> bipartite graphs ->
// pruning -> one-mode projections -> graph embeddings -> labeled set ->
// SVM detection / X-Means mining. Benches and examples drive experiments
// through this type.
#pragma once

#include <cstdint>

#include "core/behavior.hpp"
#include "core/detector.hpp"
#include "embed/embedder.hpp"
#include "intel/labels.hpp"
#include "intel/virustotal.hpp"
#include "ml/svm.hpp"
#include "ml/xmeans.hpp"
#include "trace/config.hpp"
#include "trace/generator.hpp"

namespace dnsembed::core {

struct PipelineConfig {
  trace::TraceConfig trace;
  BehaviorModelConfig behavior;

  /// Worker threads for the three one-mode projections (0 = one per
  /// hardware thread). Applied to all three ProjectionOptions in
  /// `behavior` by run_pipeline; projection output is deterministic for
  /// every value, so this is purely a throughput knob.
  std::size_t projection_threads = 0;

  /// Projection backend for the three one-mode projections, applied to all
  /// three ProjectionOptions in `behavior` like projection_threads.
  /// kSketched swaps exact pair counting for minhash/LSH candidate
  /// generation with exact verification — the million-domain route. Unlike
  /// projection_threads this changes the output (a high-recall subgraph),
  /// so it participates in the resumable-run config hash.
  graph::ProjectionMode projection_mode = graph::ProjectionMode::kExact;

  /// Minhash/LSH parameters used when projection_mode == kSketched.
  graph::SketchOptions sketch;

  /// Embedding size k per similarity graph; the combined vector is 3k
  /// (paper §6.1).
  std::size_t embedding_dimension = 32;
  embed::EmbedConfig embedding;  // method + method knobs; dimension/seed overridden

  intel::VirusTotalConfig virustotal;
  intel::LabelingConfig labeling;

  ml::SvmConfig svm;     // paper defaults: RBF, C = 0.09, gamma = 0.06
  std::size_t kfold = 10;

  ml::XMeansConfig xmeans;

  /// Retain netflow records for cluster traffic analysis (§7.2.2).
  bool keep_flows = true;

  /// Retain the raw DNS log entries (streaming-detector replays split
  /// them by day; off by default — full traces are large).
  bool keep_entries = false;

  std::uint64_t seed = 1;

  PipelineConfig() {
    // Budget LINE by total samples, not per-edge: similarity graphs can
    // have millions of edges.
    embedding.line.total_samples = 6'000'000;
    embedding.line.threads = 4;
    // Kernel fill / batch scoring parallelism (deterministic; see SvmConfig).
    svm.threads = 0;
    xmeans.k_min = 4;
    xmeans.k_max = 48;
  }
};

struct PipelineResult {
  trace::TraceResult trace;
  BehaviorModel model;
  embed::EmbeddingMatrix query_embedding;
  embed::EmbeddingMatrix ip_embedding;
  embed::EmbeddingMatrix temporal_embedding;
  embed::EmbeddingMatrix combined_embedding;  // R^{3k}, rows = kept_domains
  intel::LabeledSet labels;
  std::vector<trace::NetflowRecord> flows;
  std::vector<dns::LogEntry> entries;  // only when keep_entries
};

/// Run trace generation through embedding + labeling. Detection and
/// clustering are separate calls (they are the per-experiment variables).
PipelineResult run_pipeline(const PipelineConfig& config);

/// Convenience: evaluate the SVM on each feature channel and the combined
/// vector (Figs. 6-7).
struct ChannelEvaluations {
  DetectionEvaluation query;
  DetectionEvaluation ip;
  DetectionEvaluation temporal;
  DetectionEvaluation combined;
};

ChannelEvaluations evaluate_channels(const PipelineResult& result, const PipelineConfig& config);

}  // namespace dnsembed::core
