#include "core/clustering.hpp"

#include <algorithm>
#include <map>

namespace dnsembed::core {

ClusteringResult cluster_domains(const embed::EmbeddingMatrix& embedding,
                                 const std::vector<std::string>& domains,
                                 const trace::GroundTruth& truth,
                                 const ml::XMeansConfig& config) {
  ml::Matrix x{domains.size(), embedding.dimension()};
  for (std::size_t i = 0; i < domains.size(); ++i) {
    if (const auto vec = embedding.vector_for(domains[i])) {
      auto dst = x.row(i);
      for (std::size_t d = 0; d < vec->size(); ++d) dst[d] = (*vec)[d];
    }
  }
  const ml::XMeansResult xm = ml::xmeans(x, config);

  ClusteringResult result;
  result.assignment = xm.assignment;
  result.k = xm.k;
  result.clusters.resize(xm.k);
  for (std::size_t c = 0; c < xm.k; ++c) result.clusters[c].id = c;
  for (std::size_t i = 0; i < domains.size(); ++i) {
    result.clusters[xm.assignment[i]].domains.push_back(domains[i]);
  }
  for (auto& cluster : result.clusters) {
    std::map<std::string, std::size_t> family_counts;
    for (const auto& domain : cluster.domains) {
      if (const auto family = truth.family_of(domain)) {
        ++cluster.malicious;
        ++family_counts[truth.families()[*family].name];
      }
    }
    for (const auto& [name, count] : family_counts) {
      if (count > cluster.dominant_family_count) {
        cluster.dominant_family = name;
        cluster.dominant_family_count = count;
      }
    }
  }
  std::sort(result.clusters.begin(), result.clusters.end(),
            [](const DomainCluster& a, const DomainCluster& b) {
              if (a.malicious_fraction() != b.malicious_fraction()) {
                return a.malicious_fraction() > b.malicious_fraction();
              }
              return a.malicious > b.malicious;
            });
  return result;
}

ClusterTrafficPattern traffic_pattern_for(const DomainCluster& cluster,
                                          const trace::GroundTruth& truth,
                                          const std::vector<trace::NetflowRecord>& flows) {
  // The cluster's serving IPs: union of the pools of families owning its
  // malicious members (netflow records carry IPs, not domains).
  std::unordered_set<std::uint32_t> server_ips;
  for (const auto& domain : cluster.domains) {
    if (const auto family = truth.family_of(domain)) {
      for (const auto& ip : truth.families()[*family].ips) server_ips.insert(ip.value());
    }
  }
  ClusterTrafficPattern pattern;
  pattern.cluster_id = cluster.id;
  std::unordered_set<std::string> hosts;
  std::unordered_set<std::uint16_t> ports;
  std::unordered_set<std::uint32_t> seen_ips;
  for (const auto& flow : flows) {
    if (!server_ips.contains(flow.dst_ip.value())) continue;
    ++pattern.flows;
    hosts.insert(flow.host);
    ports.insert(flow.dst_port);
    seen_ips.insert(flow.dst_ip.value());
  }
  pattern.distinct_hosts = hosts.size();
  for (const auto ip : seen_ips) pattern.server_ips.push_back(dns::Ipv4{ip}.to_string());
  std::sort(pattern.server_ips.begin(), pattern.server_ips.end());
  pattern.ports.assign(ports.begin(), ports.end());
  std::sort(pattern.ports.begin(), pattern.ports.end());
  return pattern;
}

}  // namespace dnsembed::core
