#include "core/pipeline.hpp"

#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace dnsembed::core {

namespace {

/// Collects flows only (DNS events go to the graph builder).
class FlowStore final : public trace::TraceSink {
 public:
  void on_dns(const dns::LogEntry&) override {}
  void on_flow(const trace::NetflowRecord& record) override { flows_.push_back(record); }

  std::vector<trace::NetflowRecord> take() && { return std::move(flows_); }

 private:
  std::vector<trace::NetflowRecord> flows_;
};

}  // namespace

PipelineResult run_pipeline(const PipelineConfig& config) {
  util::Stopwatch watch;
  PipelineResult result;

  GraphBuilderSink graphs;
  FlowStore flow_store;
  {
    std::vector<trace::TraceSink*> sinks{&graphs};
    if (config.keep_flows) sinks.push_back(&flow_store);
    trace::TeeSink tee{sinks};
    result.trace = trace::generate_trace(config.trace, tee);
  }
  util::log_info() << "pipeline: trace " << result.trace.dns_events << " dns events in "
                   << watch.seconds() << "s";
  if (config.keep_flows) result.flows = std::move(flow_store).take();

  watch.reset();
  BehaviorModelConfig behavior = config.behavior;
  behavior.query_projection.threads = config.projection_threads;
  behavior.ip_projection.threads = config.projection_threads;
  behavior.temporal_projection.threads = config.projection_threads;
  result.model = build_behavior_model(graphs.take_hdbg(), graphs.take_dibg(),
                                      graphs.take_dtbg(), behavior);
  util::log_info() << "pipeline: behavior model (" << result.model.kept_domains.size()
                   << " domains; q/i/t edges " << result.model.query_similarity.edge_count()
                   << "/" << result.model.ip_similarity.edge_count() << "/"
                   << result.model.temporal_similarity.edge_count() << ") in "
                   << watch.seconds() << "s";

  watch.reset();
  embed::EmbedConfig embed_config = config.embedding;
  embed_config.dimension = config.embedding_dimension;
  embed_config.seed = config.seed;
  result.query_embedding = embed::embed_graph(result.model.query_similarity, embed_config);
  embed_config.seed = config.seed + 1;
  result.ip_embedding = embed::embed_graph(result.model.ip_similarity, embed_config);
  embed_config.seed = config.seed + 2;
  result.temporal_embedding =
      embed::embed_graph(result.model.temporal_similarity, embed_config);
  result.combined_embedding = embed::EmbeddingMatrix::concat(
      result.model.kept_domains,
      {&result.query_embedding, &result.ip_embedding, &result.temporal_embedding});
  util::log_info() << "pipeline: embeddings (3x" << config.embedding_dimension << ") in "
                   << watch.seconds() << "s";

  const intel::VirusTotalSim vt{result.trace.truth, config.virustotal};
  result.labels =
      build_labeled_set(result.model.kept_domains, result.trace.truth, vt, config.labeling);
  util::log_info() << "pipeline: labeled set " << result.labels.size() << " ("
                   << result.labels.malicious_count() << " malicious)";
  return result;
}

ChannelEvaluations evaluate_channels(const PipelineResult& result,
                                     const PipelineConfig& config) {
  ChannelEvaluations evals;
  const auto run = [&](const embed::EmbeddingMatrix& embedding) {
    return evaluate_svm(make_dataset(embedding, result.labels), config.svm, config.kfold,
                        config.seed);
  };
  evals.query = run(result.query_embedding);
  evals.ip = run(result.ip_embedding);
  evals.temporal = run(result.temporal_embedding);
  evals.combined = run(result.combined_embedding);
  return evals;
}

}  // namespace dnsembed::core
