#include "core/pipeline.hpp"

#include <map>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"

namespace dnsembed::core {

namespace {

/// Collects flows only (DNS events go to the graph builder).
class FlowStore final : public trace::TraceSink {
 public:
  void on_dns(const dns::LogEntry&) override {}
  void on_flow(const trace::NetflowRecord& record) override { flows_.push_back(record); }

  std::vector<trace::NetflowRecord> take() && { return std::move(flows_); }

 private:
  std::vector<trace::NetflowRecord> flows_;
};

/// Collects the raw entries (streaming-detector replays need them per day).
class EntryStore final : public trace::TraceSink {
 public:
  void on_dns(const dns::LogEntry& entry) override { entries_.push_back(entry); }

  std::vector<dns::LogEntry> take() && { return std::move(entries_); }

 private:
  std::vector<dns::LogEntry> entries_;
};

}  // namespace

PipelineResult run_pipeline(const PipelineConfig& config) {
  obs::StageSpan pipeline_span{"pipeline.run"};
  PipelineResult result;

  GraphBuilderSink graphs;
  FlowStore flow_store;
  EntryStore entry_store;
  {
    obs::StageSpan span{"pipeline.trace"};
    std::vector<trace::TraceSink*> sinks{&graphs};
    if (config.keep_flows) sinks.push_back(&flow_store);
    if (config.keep_entries) sinks.push_back(&entry_store);
    trace::TeeSink tee{sinks};
    result.trace = trace::generate_trace(config.trace, tee);
  }
  util::log_info() << "pipeline: trace " << result.trace.dns_events << " dns events";
  obs::metrics().gauge("pipeline.trace.dns_events").set(
      static_cast<std::int64_t>(result.trace.dns_events));
  if (config.keep_flows) result.flows = std::move(flow_store).take();
  if (config.keep_entries) result.entries = std::move(entry_store).take();

  {
    obs::StageSpan span{"pipeline.behavior"};
    BehaviorModelConfig behavior = config.behavior;
    for (auto* proj : {&behavior.query_projection, &behavior.ip_projection,
                       &behavior.temporal_projection}) {
      proj->threads = config.projection_threads;
      proj->mode = config.projection_mode;
      proj->sketch = config.sketch;
    }
    result.model = build_behavior_model(graphs.take_hdbg(), graphs.take_dibg(),
                                        graphs.take_dtbg(), behavior);
  }
  util::log_info() << "pipeline: behavior model (" << result.model.kept_domains.size()
                   << " domains; q/i/t edges " << result.model.query_similarity.edge_count()
                   << "/" << result.model.ip_similarity.edge_count() << "/"
                   << result.model.temporal_similarity.edge_count() << ")";
  auto& registry = obs::metrics();
  registry.gauge("pipeline.behavior.kept_domains")
      .set(static_cast<std::int64_t>(result.model.kept_domains.size()));
  registry.gauge("pipeline.behavior.query_edges")
      .set(static_cast<std::int64_t>(result.model.query_similarity.edge_count()));
  registry.gauge("pipeline.behavior.ip_edges")
      .set(static_cast<std::int64_t>(result.model.ip_similarity.edge_count()));
  registry.gauge("pipeline.behavior.temporal_edges")
      .set(static_cast<std::int64_t>(result.model.temporal_similarity.edge_count()));

  {
    obs::StageSpan span{"pipeline.embed"};
    embed::EmbedConfig embed_config = config.embedding;
    embed_config.dimension = config.embedding_dimension;
    embed_config.seed = config.seed;
    {
      OBS_SPAN("pipeline.embed.query");
      result.query_embedding = embed::embed_graph(result.model.query_similarity, embed_config);
    }
    embed_config.seed = config.seed + 1;
    {
      OBS_SPAN("pipeline.embed.ip");
      result.ip_embedding = embed::embed_graph(result.model.ip_similarity, embed_config);
    }
    embed_config.seed = config.seed + 2;
    {
      OBS_SPAN("pipeline.embed.temporal");
      result.temporal_embedding =
          embed::embed_graph(result.model.temporal_similarity, embed_config);
    }
    result.combined_embedding = embed::EmbeddingMatrix::concat(
        result.model.kept_domains,
        {&result.query_embedding, &result.ip_embedding, &result.temporal_embedding});
  }
  util::log_info() << "pipeline: embeddings (3x" << config.embedding_dimension << ")";

  {
    obs::StageSpan span{"pipeline.labels"};
    const intel::VirusTotalSim vt{result.trace.truth, config.virustotal};
    result.labels =
        build_labeled_set(result.model.kept_domains, result.trace.truth, vt, config.labeling);
  }
  util::log_info() << "pipeline: labeled set " << result.labels.size() << " ("
                   << result.labels.malicious_count() << " malicious)";
  registry.gauge("pipeline.labels.labeled").set(static_cast<std::int64_t>(result.labels.size()));
  registry.gauge("pipeline.labels.malicious")
      .set(static_cast<std::int64_t>(result.labels.malicious_count()));
  // Labeled-set composition by campaign archetype (scenario.* namespace;
  // detection-side gauges are published by evaluate_scenarios).
  {
    std::map<std::string, std::size_t> per_scenario;
    for (std::size_t i = 0; i < result.labels.size(); ++i) {
      if (result.labels.labels[i] != 1) continue;
      const std::string_view tag = result.labels.scenario(i);
      per_scenario[tag.empty() ? "unknown" : std::string{tag}] += 1;
    }
    for (const auto& [tag, count] : per_scenario) {
      registry.gauge("scenario." + tag + ".domains").set(static_cast<std::int64_t>(count));
    }
  }
  return result;
}

ChannelEvaluations evaluate_channels(const PipelineResult& result,
                                     const PipelineConfig& config) {
  obs::StageSpan span{"pipeline.svm"};
  ChannelEvaluations evals;
  const auto run = [&](const char* channel, const embed::EmbeddingMatrix& embedding) {
    OBS_SPAN(channel);
    return evaluate_svm(make_dataset(embedding, result.labels), config.svm, config.kfold,
                        config.seed);
  };
  evals.query = run("pipeline.svm.query", result.query_embedding);
  evals.ip = run("pipeline.svm.ip", result.ip_embedding);
  evals.temporal = run("pipeline.svm.temporal", result.temporal_embedding);
  evals.combined = run("pipeline.svm.combined", result.combined_embedding);
  return evals;
}

}  // namespace dnsembed::core
