// Graph-inference baseline from the paper's related work (§9, [27]
// Manadhata et al., ESORICS'14): loopy belief propagation over the
// host-domain bipartite graph. Known-malicious domains seed high priors,
// known-benign seed low priors; a homophilic edge potential ("infected
// hosts talk to malicious domains") propagates belief to unlabeled domains
// through shared hosts.
//
// Pairwise MRF, two states {benign, malicious}; sum-product messages with
// flat initialization, synchronous updates, normalized per message.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/bipartite.hpp"

namespace dnsembed::core {

struct BeliefPropagationConfig {
  /// Prior P(malicious) for seeded malicious / benign domains.
  double seed_malicious_prior = 0.99;
  double seed_benign_prior = 0.01;
  /// Prior for unlabeled nodes (domains and hosts).
  double unknown_prior = 0.5;
  /// Edge potential: probability that an edge connects same-state nodes
  /// (> 0.5 = homophily). [27] uses a value slightly above one half on a
  /// graph with millions of edges; each hop scales belief deviation by
  /// (2*homophily - 1), so small graphs need a stronger potential.
  double homophily = 0.6;
  std::size_t iterations = 10;
};

/// Run BP on hosts x domains and return P(malicious) for every RIGHT
/// vertex (index-aligned with hdbg right ids). `seed_labels` maps domain
/// names to 0/1; unknown domains get the unknown prior. Throws
/// std::invalid_argument for out-of-range config values.
std::vector<double> bp_domain_beliefs(const graph::BipartiteGraph& hdbg,
                                      const std::unordered_map<std::string, int>& seed_labels,
                                      const BeliefPropagationConfig& config = {});

}  // namespace dnsembed::core
