#include "dns/ipv4.hpp"

#include <charconv>

namespace dnsembed::dns {

std::string Ipv4::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out += '.';
    out += std::to_string((value_ >> shift) & 0xFF);
  }
  return out;
}

std::optional<Ipv4> Ipv4::parse(std::string_view text) noexcept {
  std::uint32_t value = 0;
  int octets = 0;
  const char* p = text.data();
  const char* const end = text.data() + text.size();
  while (p < end) {
    unsigned int octet = 0;
    const auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || next == p || octet > 255) return std::nullopt;
    // Reject leading zeros like "01" (ambiguous octal in the wild).
    if (next - p > 1 && *p == '0') return std::nullopt;
    value = (value << 8) | octet;
    ++octets;
    p = next;
    if (p < end) {
      if (*p != '.' || octets == 4) return std::nullopt;
      ++p;
      if (p == end) return std::nullopt;  // trailing dot
    }
  }
  if (octets != 4) return std::nullopt;
  return Ipv4{value};
}

}  // namespace dnsembed::dns
