// The joined DNS log record consumed by the behavioral-modeling pipeline:
// one query plus its matched response, attributed to a stable device id
// (after DHCP remapping). This is the schema the paper's pre-processing
// stage extracts from raw packets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/ipv4.hpp"
#include "dns/record.hpp"

namespace dnsembed::dns {

struct LogEntry {
  std::int64_t timestamp = 0;    // seconds since the trace epoch
  std::string host;              // stable device id (e.g. MAC after DHCP join)
  std::string qname;             // normalized FQDN
  QType qtype = QType::kA;
  RCode rcode = RCode::kNoError;
  std::uint32_t ttl = 0;         // minimum answer TTL; 0 when unanswered
  std::vector<Ipv4> addresses;   // resolved A records
  std::vector<std::string> cnames;  // CNAME chain targets, in order

  friend bool operator==(const LogEntry&, const LogEntry&) = default;
};

}  // namespace dnsembed::dns
