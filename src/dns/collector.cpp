#include "dns/collector.hpp"

#include <algorithm>

#include "dns/wire.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace dnsembed::dns {

namespace {
constexpr std::uint16_t kDnsPort = 53;

// Per-packet sites are rate-limited: a hostile or damaged capture must not
// turn the log into a firehose, but the first few sightings are gold for
// triage. Full totals live in Stats and the obs counters.
util::LimitedLogger g_malformed_log{8};
util::LimitedLogger g_evicted_log{4};
}

DnsCollector::DnsCollector(const DhcpTable* dhcp, std::int64_t timeout_seconds,
                           std::size_t max_pending)
    : dhcp_{dhcp}, timeout_{timeout_seconds}, max_pending_{std::max<std::size_t>(max_pending, 1)} {}

std::string DnsCollector::host_for(Ipv4 client, std::int64_t ts) const {
  if (dhcp_ != nullptr) {
    if (auto device = dhcp_->device_for(client, ts)) return *std::move(device);
  }
  return client.to_string();
}

void DnsCollector::emit(const Key& key, const PendingQuery& query, const Message* response) {
  LogEntry entry;
  entry.timestamp = query.ts;
  entry.host = host_for(Ipv4{key.client_ip}, query.ts);
  entry.qname = key.qname;
  entry.qtype = query.qtype;
  if (response == nullptr) {
    entry.rcode = RCode::kServFail;  // never answered
  } else {
    entry.rcode = response->rcode;
    std::uint32_t min_ttl = 0;
    bool have_ttl = false;
    for (const auto& rr : response->answers) {
      if (rr.type == QType::kA) {
        entry.addresses.push_back(rr.address);
        min_ttl = have_ttl ? std::min(min_ttl, rr.ttl) : rr.ttl;
        have_ttl = true;
      } else if (rr.type == QType::kCname) {
        entry.cnames.push_back(rr.target);
      }
    }
    entry.ttl = have_ttl ? min_ttl : 0;
  }
  completed_.push_back(std::move(entry));
}

void DnsCollector::evict_oldest() {
  static obs::Counter& evicted = obs::metrics().counter("dns.collector.evicted");
  const auto oldest = by_seq_.begin();
  const auto it = pending_.find(*oldest->second);
  g_evicted_log.warn() << "collector: pending-query table full (" << max_pending_
                       << "), evicting oldest query for " << it->first.qname;
  emit(it->first, it->second, nullptr);
  ++stats_.evicted;
  evicted.add(1);
  by_seq_.erase(oldest);
  pending_.erase(it);
}

void DnsCollector::on_datagram(std::int64_t ts, const UdpDatagram& datagram) {
  // One relaxed add per datagram (the per-packet hot path).
  static obs::Counter& queries = obs::metrics().counter("dns.collector.query_packets");
  static obs::Counter& responses = obs::metrics().counter("dns.collector.response_packets");
  static obs::Counter& matched = obs::metrics().counter("dns.collector.matched");
  static obs::Counter& orphans = obs::metrics().counter("dns.collector.orphan_responses");
  static obs::Counter& malformed = obs::metrics().counter("dns.collector.malformed");
  static obs::Counter& ignored = obs::metrics().counter("dns.collector.ignored");
  static obs::Counter& duplicates = obs::metrics().counter("dns.collector.duplicate_queries");

  const bool to_server = datagram.dst_port == kDnsPort;
  const bool from_server = datagram.src_port == kDnsPort;
  if (!to_server && !from_server) {
    ++stats_.ignored;
    ignored.add(1);
    return;
  }
  const auto message = decode(datagram.payload);
  if (!message || message->questions.empty()) {
    ++stats_.malformed;
    malformed.add(1);
    g_malformed_log.warn() << "collector: malformed DNS datagram at ts " << ts << " ("
                           << datagram.payload.size() << " bytes)";
    return;
  }
  const auto& question = message->questions.front();

  if (to_server && !message->is_response) {
    ++stats_.query_packets;
    queries.add(1);
    Key key{datagram.src_ip.value(), datagram.src_port, message->id, question.name};
    const auto [it, inserted] = pending_.try_emplace(std::move(key));
    if (!inserted) {
      // Retransmission of a still-pending query: the newer sighting wins
      // (its timestamp resets the expiry clock and its seq the eviction
      // order), and the replaced one is accounted as a duplicate.
      ++stats_.duplicate_queries;
      duplicates.add(1);
      by_seq_.erase(it->second.seq);
    }
    it->second = PendingQuery{ts, question.type, next_seq_++};
    by_seq_.emplace(it->second.seq, &it->first);
    while (pending_.size() > max_pending_) evict_oldest();
    return;
  }
  if (from_server && message->is_response) {
    ++stats_.response_packets;
    responses.add(1);
    const Key key{datagram.dst_ip.value(), datagram.dst_port, message->id, question.name};
    const auto it = pending_.find(key);
    if (it == pending_.end()) {
      ++stats_.orphan_responses;
      orphans.add(1);
      return;
    }
    emit(key, it->second, &*message);
    by_seq_.erase(it->second.seq);
    pending_.erase(it);
    ++stats_.matched;
    matched.add(1);
    return;
  }
  // Query arriving from port 53 or response heading to it: misdirected.
  ++stats_.ignored;
  ignored.add(1);
}

void DnsCollector::flush(std::int64_t now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now - it->second.ts >= timeout_) {
      emit(it->first, it->second, nullptr);
      ++stats_.expired_queries;
      by_seq_.erase(it->second.seq);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void DnsCollector::flush_all() {
  for (const auto& [key, query] : pending_) {
    emit(key, query, nullptr);
    ++stats_.expired_queries;
  }
  pending_.clear();
  by_seq_.clear();
}

std::vector<LogEntry> DnsCollector::take_entries() { return std::move(completed_); }

}  // namespace dnsembed::dns
