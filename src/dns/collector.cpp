#include "dns/collector.hpp"

#include <algorithm>

#include "dns/wire.hpp"

namespace dnsembed::dns {

namespace {
constexpr std::uint16_t kDnsPort = 53;
}

DnsCollector::DnsCollector(const DhcpTable* dhcp, std::int64_t timeout_seconds,
                           std::size_t max_pending)
    : dhcp_{dhcp}, timeout_{timeout_seconds}, max_pending_{std::max<std::size_t>(max_pending, 1)} {}

std::string DnsCollector::host_for(Ipv4 client, std::int64_t ts) const {
  if (dhcp_ != nullptr) {
    if (auto device = dhcp_->device_for(client, ts)) return *std::move(device);
  }
  return client.to_string();
}

void DnsCollector::emit(const Key& key, const PendingQuery& query, const Message* response) {
  LogEntry entry;
  entry.timestamp = query.ts;
  entry.host = host_for(Ipv4{key.client_ip}, query.ts);
  entry.qname = key.qname;
  entry.qtype = query.qtype;
  if (response == nullptr) {
    entry.rcode = RCode::kServFail;  // never answered
  } else {
    entry.rcode = response->rcode;
    std::uint32_t min_ttl = 0;
    bool have_ttl = false;
    for (const auto& rr : response->answers) {
      if (rr.type == QType::kA) {
        entry.addresses.push_back(rr.address);
        min_ttl = have_ttl ? std::min(min_ttl, rr.ttl) : rr.ttl;
        have_ttl = true;
      } else if (rr.type == QType::kCname) {
        entry.cnames.push_back(rr.target);
      }
    }
    entry.ttl = have_ttl ? min_ttl : 0;
  }
  completed_.push_back(std::move(entry));
}

void DnsCollector::evict_oldest() {
  const auto oldest = by_seq_.begin();
  const auto it = pending_.find(*oldest->second);
  emit(it->first, it->second, nullptr);
  ++stats_.evicted;
  by_seq_.erase(oldest);
  pending_.erase(it);
}

void DnsCollector::on_datagram(std::int64_t ts, const UdpDatagram& datagram) {
  const bool to_server = datagram.dst_port == kDnsPort;
  const bool from_server = datagram.src_port == kDnsPort;
  if (!to_server && !from_server) {
    ++stats_.ignored;
    return;
  }
  const auto message = decode(datagram.payload);
  if (!message || message->questions.empty()) {
    ++stats_.malformed;
    return;
  }
  const auto& question = message->questions.front();

  if (to_server && !message->is_response) {
    ++stats_.query_packets;
    Key key{datagram.src_ip.value(), datagram.src_port, message->id, question.name};
    const auto [it, inserted] = pending_.try_emplace(std::move(key));
    if (!inserted) {
      // Retransmission of a still-pending query: the newer sighting wins
      // (its timestamp resets the expiry clock and its seq the eviction
      // order), and the replaced one is accounted as a duplicate.
      ++stats_.duplicate_queries;
      by_seq_.erase(it->second.seq);
    }
    it->second = PendingQuery{ts, question.type, next_seq_++};
    by_seq_.emplace(it->second.seq, &it->first);
    while (pending_.size() > max_pending_) evict_oldest();
    return;
  }
  if (from_server && message->is_response) {
    ++stats_.response_packets;
    const Key key{datagram.dst_ip.value(), datagram.dst_port, message->id, question.name};
    const auto it = pending_.find(key);
    if (it == pending_.end()) {
      ++stats_.orphan_responses;
      return;
    }
    emit(key, it->second, &*message);
    by_seq_.erase(it->second.seq);
    pending_.erase(it);
    ++stats_.matched;
    return;
  }
  // Query arriving from port 53 or response heading to it: misdirected.
  ++stats_.ignored;
}

void DnsCollector::flush(std::int64_t now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now - it->second.ts >= timeout_) {
      emit(it->first, it->second, nullptr);
      ++stats_.expired_queries;
      by_seq_.erase(it->second.seq);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void DnsCollector::flush_all() {
  for (const auto& [key, query] : pending_) {
    emit(key, query, nullptr);
    ++stats_.expired_queries;
  }
  pending_.clear();
  by_seq_.clear();
}

std::vector<LogEntry> DnsCollector::take_entries() { return std::move(completed_); }

}  // namespace dnsembed::dns
