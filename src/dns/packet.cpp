#include "dns/packet.hpp"

namespace dnsembed::dns {

namespace {

constexpr std::size_t kEthernetHeader = 14;
constexpr std::size_t kIpv4Header = 20;
constexpr std::size_t kUdpHeader = 8;
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
constexpr std::uint8_t kProtocolUdp = 17;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v & 0xFFFF));
}

std::uint16_t read_u16(std::span<const std::uint8_t> data, std::size_t offset) noexcept {
  return static_cast<std::uint16_t>((data[offset] << 8) | data[offset + 1]);
}

std::uint32_t read_u32(std::span<const std::uint8_t> data, std::size_t offset) noexcept {
  return (std::uint32_t{data[offset]} << 24) | (std::uint32_t{data[offset + 1]} << 16) |
         (std::uint32_t{data[offset + 2]} << 8) | data[offset + 3];
}

}  // namespace

std::uint16_t ipv4_checksum(std::span<const std::uint8_t> header) noexcept {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < header.size(); i += 2) {
    sum += static_cast<std::uint32_t>((header[i] << 8) | header[i + 1]);
  }
  if (header.size() % 2 == 1) sum += static_cast<std::uint32_t>(header.back() << 8);
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::vector<std::uint8_t> encapsulate(const UdpDatagram& datagram) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kEthernetHeader + kIpv4Header + kUdpHeader + datagram.payload.size());

  // Ethernet II: synthetic MACs, ethertype IPv4.
  const std::uint8_t dst_mac[6] = {0x02, 0x00, 0x00, 0x00, 0x00, 0x02};
  const std::uint8_t src_mac[6] = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
  frame.insert(frame.end(), dst_mac, dst_mac + 6);
  frame.insert(frame.end(), src_mac, src_mac + 6);
  put_u16(frame, kEtherTypeIpv4);

  // IPv4 header.
  const auto total_length =
      static_cast<std::uint16_t>(kIpv4Header + kUdpHeader + datagram.payload.size());
  const std::size_t ip_start = frame.size();
  frame.push_back(0x45);  // version 4, IHL 5
  frame.push_back(0x00);  // DSCP/ECN
  put_u16(frame, total_length);
  put_u16(frame, 0x0000);  // identification
  put_u16(frame, 0x4000);  // flags: DF, no fragmentation
  frame.push_back(64);     // TTL
  frame.push_back(kProtocolUdp);
  put_u16(frame, 0x0000);  // checksum placeholder
  put_u32(frame, datagram.src_ip.value());
  put_u32(frame, datagram.dst_ip.value());
  const std::uint16_t checksum =
      ipv4_checksum({frame.data() + ip_start, kIpv4Header});
  frame[ip_start + 10] = static_cast<std::uint8_t>(checksum >> 8);
  frame[ip_start + 11] = static_cast<std::uint8_t>(checksum & 0xFF);

  // UDP header (checksum 0 = not computed).
  put_u16(frame, datagram.src_port);
  put_u16(frame, datagram.dst_port);
  put_u16(frame, static_cast<std::uint16_t>(kUdpHeader + datagram.payload.size()));
  put_u16(frame, 0x0000);

  frame.insert(frame.end(), datagram.payload.begin(), datagram.payload.end());
  return frame;
}

std::optional<UdpDatagram> decapsulate(std::span<const std::uint8_t> frame) {
  if (frame.size() < kEthernetHeader + kIpv4Header + kUdpHeader) return std::nullopt;
  if (read_u16(frame, 12) != kEtherTypeIpv4) return std::nullopt;

  const auto ip = frame.subspan(kEthernetHeader);
  if ((ip[0] >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0F) * 4;
  if (ihl != kIpv4Header) return std::nullopt;  // options unexpected here
  if (ip[9] != kProtocolUdp) return std::nullopt;
  const std::uint16_t flags_frag = read_u16(ip, 6);
  if ((flags_frag & 0x2000) != 0 || (flags_frag & 0x1FFF) != 0) return std::nullopt;
  const std::uint16_t total_length = read_u16(ip, 2);
  if (total_length < kIpv4Header + kUdpHeader ||
      total_length > ip.size()) {
    return std::nullopt;
  }
  if (ipv4_checksum(ip.subspan(0, kIpv4Header)) != 0) return std::nullopt;

  const auto udp = ip.subspan(kIpv4Header);
  const std::uint16_t udp_length = read_u16(udp, 4);
  if (udp_length < kUdpHeader || udp_length > udp.size()) return std::nullopt;

  UdpDatagram out;
  out.src_ip = Ipv4{read_u32(ip, 12)};
  out.dst_ip = Ipv4{read_u32(ip, 16)};
  out.src_port = read_u16(udp, 0);
  out.dst_port = read_u16(udp, 2);
  out.payload.assign(udp.begin() + kUdpHeader, udp.begin() + udp_length);
  return out;
}

}  // namespace dnsembed::dns
