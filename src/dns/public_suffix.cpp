#include "dns/public_suffix.hpp"

#include "dns/name.hpp"

namespace dnsembed::dns {

PublicSuffixList::PublicSuffixList(const std::vector<std::string>& rules) {
  for (const auto& raw : rules) {
    const std::string rule = normalize_name(raw);
    if (rule.empty()) continue;
    if (rule[0] == '!') {
      exceptions_.insert(rule.substr(1));
    } else if (rule.rfind("*.", 0) == 0) {
      wildcards_.insert(rule.substr(2));
    } else {
      rules_.insert(rule);
    }
  }
}

const PublicSuffixList& PublicSuffixList::builtin() {
  static const PublicSuffixList instance{{
      // Generic TLDs (incl. the new gTLDs common in abuse feeds).
      "com", "net", "org", "info", "biz", "edu", "gov", "mil", "int",
      "io", "ai", "co", "me", "tv", "cc", "ws", "bid", "top", "xyz",
      "club", "site", "online", "pw", "su", "win", "loan", "work",
      "click", "link", "download", "stream", "racing", "party", "science",
      // Country codes.
      "cn", "uk", "jp", "kr", "de", "fr", "ru", "in", "br", "au", "ca",
      "nl", "it", "es", "se", "ch", "tw", "hk", "sg", "us", "eu", "nz",
      // Multi-level country suffixes.
      "com.cn", "net.cn", "org.cn", "edu.cn", "gov.cn", "ac.cn",
      "co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk",
      "co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp",
      "co.kr", "or.kr", "ac.kr",
      "com.au", "net.au", "org.au", "edu.au",
      "com.br", "net.br", "org.br",
      "co.in", "net.in", "org.in",
      "com.tw", "org.tw", "com.hk", "com.sg",
      "co.nz", "org.nz",
      // Private-registry style suffix used by the paper's example
      // (www.bbc.uk.co -> e2LD bbc.uk.co).
      "uk.co",
      // Wildcard + exception examples (actual PSL entries for .ck).
      "*.ck", "!www.ck",
  }};
  return instance;
}

std::string_view PublicSuffixList::public_suffix_of(std::string_view name) const noexcept {
  if (name.empty()) return {};

  // Walk suffixes from longest to shortest; prefer the longest matching
  // rule, with exception rules overriding wildcard rules. Every candidate
  // is a view into `name`, so the heterogeneous set lookups never allocate.
  std::size_t offset = 0;   // index into name where the current suffix starts
  std::string_view best{};  // longest match so far (PSL: longest rule wins)
  for (;;) {
    const std::string_view suffix = name.substr(offset);
    if (exceptions_.contains(suffix)) {
      // Exception rule: the suffix is everything after the first label.
      const std::size_t dot = suffix.find('.');
      return dot == std::string_view::npos ? std::string_view{} : suffix.substr(dot + 1);
    }
    if (best.empty()) {
      if (rules_.contains(suffix)) {
        best = suffix;
      } else {
        // "*.X": the whole "label.X" is a suffix when the remainder matches X.
        const std::size_t dot = suffix.find('.');
        if (dot != std::string_view::npos && wildcards_.contains(suffix.substr(dot + 1))) {
          best = suffix;
        }
      }
    }
    const std::size_t next = name.find('.', offset);
    if (next == std::string_view::npos) break;
    offset = next + 1;
  }
  if (!best.empty()) return best;
  // Default "*" rule: the TLD alone.
  return top_level(name);
}

std::string_view PublicSuffixList::e2ld_view(std::string_view name) const noexcept {
  if (!is_valid_name(name)) return {};
  const std::string_view suffix = public_suffix_of(name);
  if (suffix.empty() || suffix.size() == name.size()) return {};
  if (name[name.size() - suffix.size() - 1] != '.') return {};
  // One label more than the suffix.
  const std::string_view head = name.substr(0, name.size() - suffix.size() - 1);
  const std::size_t dot = head.rfind('.');
  return dot == std::string_view::npos ? name : name.substr(dot + 1);
}

std::string PublicSuffixList::public_suffix(std::string_view name) const {
  const std::string norm = normalize_name(name);
  return std::string{public_suffix_of(norm)};
}

std::optional<std::string> PublicSuffixList::e2ld(std::string_view name) const {
  const std::string norm = normalize_name(name);
  const std::string_view owner = e2ld_view(norm);
  if (owner.empty()) return std::nullopt;
  return std::string{owner};
}

std::string PublicSuffixList::e2ld_or_self(std::string_view name) const {
  if (auto d = e2ld(name)) return *std::move(d);
  return normalize_name(name);
}

}  // namespace dnsembed::dns
