// RFC 1035 wire-format codec: message header, questions, resource records,
// and name compression (encode and decode). The paper's collection layer
// parses DNS packets off the campus edge routers; this module is the
// equivalent packet substrate for the simulator's optional pcap-like output
// and is exercised heavily in tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/record.hpp"

namespace dnsembed::dns {

/// Parsed DNS message (class is implicitly IN; EDNS is out of scope).
struct Message {
  std::uint16_t id = 0;
  bool is_response = false;
  std::uint8_t opcode = 0;
  bool authoritative = false;
  bool truncated = false;
  bool recursion_desired = true;
  bool recursion_available = false;
  RCode rcode = RCode::kNoError;

  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authority;
  std::vector<ResourceRecord> additional;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Encode a message to wire format. Names are compressed against earlier
/// occurrences (full-suffix pointer compression, as real servers emit).
/// Throws std::invalid_argument for names that violate RFC length limits.
std::vector<std::uint8_t> encode(const Message& msg);

/// Decode a wire-format message. Returns nullopt on any malformed input
/// (truncation, compression loops, label overruns, bad rdata lengths).
std::optional<Message> decode(const std::vector<std::uint8_t>& wire);

/// Convenience: build a single-question query message.
Message make_query(std::uint16_t id, const std::string& qname, QType qtype);

/// Convenience: build a response echoing the query's question with answers.
Message make_response(const Message& query, std::vector<ResourceRecord> answers,
                      RCode rcode = RCode::kNoError);

}  // namespace dnsembed::dns
