#include "dns/packetize.hpp"

#include "dns/name.hpp"
#include "dns/wire.hpp"

namespace dnsembed::dns {

std::pair<UdpDatagram, UdpDatagram> packetize(const LogEntry& entry, Ipv4 client,
                                              std::uint16_t client_port, std::uint16_t txn_id,
                                              const PacketizeOptions& options) {
  const Message query = make_query(txn_id, entry.qname, entry.qtype);

  std::vector<ResourceRecord> answers;
  // CNAME chain first (owner = qname, then each target), then the A
  // records on the final owner, as real resolvers serialize it.
  std::string owner = normalize_name(entry.qname);
  for (const auto& target : entry.cnames) {
    ResourceRecord rr;
    rr.name = owner;
    rr.type = QType::kCname;
    rr.ttl = entry.ttl;
    rr.target = normalize_name(target);
    owner = rr.target;
    answers.push_back(std::move(rr));
  }
  for (const auto& address : entry.addresses) {
    ResourceRecord rr;
    rr.name = owner;
    rr.type = QType::kA;
    rr.ttl = entry.ttl;
    rr.address = address;
    answers.push_back(std::move(rr));
  }
  const Message response = make_response(query, std::move(answers), entry.rcode);

  UdpDatagram query_dgram;
  query_dgram.src_ip = client;
  query_dgram.dst_ip = options.resolver;
  query_dgram.src_port = client_port;
  query_dgram.dst_port = 53;
  query_dgram.payload = encode(query);

  UdpDatagram response_dgram;
  response_dgram.src_ip = options.resolver;
  response_dgram.dst_ip = client;
  response_dgram.src_port = 53;
  response_dgram.dst_port = client_port;
  response_dgram.payload = encode(response);

  return {std::move(query_dgram), std::move(response_dgram)};
}

}  // namespace dnsembed::dns
