// Punycode (RFC 3492) encode/decode for internationalized domain labels.
// Real DNS logs carry IDNs as "xn--" ACE labels; lexical features computed
// on the raw ACE form are meaningless (the paper's §8.2 notes lexical
// features break for non-English domains), so analyzers decode first.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dnsembed::dns {

/// Decode a punycode label body (WITHOUT the "xn--" prefix) to Unicode
/// code points. Returns nullopt on malformed input (bad digits, overflow,
/// out-of-range code points).
std::optional<std::vector<std::uint32_t>> punycode_decode(std::string_view input);

/// Encode Unicode code points as a punycode label body (without "xn--").
/// Returns nullopt when the input contains code points > 0x10FFFF.
std::optional<std::string> punycode_encode(const std::vector<std::uint32_t>& input);

/// Convenience: decode a full label. "xn--..." labels are punycode-decoded
/// to UTF-8; everything else is returned unchanged. Malformed ACE labels
/// are returned unchanged (as resolvers treat them).
std::string idn_label_to_unicode(std::string_view label);

/// UTF-8 encode a code-point sequence (exposed for tests).
std::string utf8_encode(const std::vector<std::uint32_t>& code_points);

}  // namespace dnsembed::dns
