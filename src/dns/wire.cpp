#include "dns/wire.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <unordered_map>

#include "dns/name.hpp"

namespace dnsembed::dns {

std::string_view qtype_name(QType t) noexcept {
  switch (t) {
    case QType::kA: return "A";
    case QType::kNs: return "NS";
    case QType::kCname: return "CNAME";
    case QType::kPtr: return "PTR";
    case QType::kMx: return "MX";
    case QType::kTxt: return "TXT";
    case QType::kAaaa: return "AAAA";
  }
  return "A";
}

QType qtype_from_name(std::string_view name) noexcept {
  std::string up;
  up.reserve(name.size());
  for (const char c : name) up += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  if (up == "NS") return QType::kNs;
  if (up == "CNAME") return QType::kCname;
  if (up == "PTR") return QType::kPtr;
  if (up == "MX") return QType::kMx;
  if (up == "TXT") return QType::kTxt;
  if (up == "AAAA") return QType::kAaaa;
  return QType::kA;
}

namespace {

// ---------------------------------------------------------------- encoding

class Encoder {
 public:
  std::vector<std::uint8_t> take() && { return std::move(buf_); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v & 0xFF));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v & 0xFFFF));
  }

  std::size_t size() const noexcept { return buf_.size(); }

  void patch_u16(std::size_t offset, std::uint16_t v) {
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v & 0xFF);
  }

  /// Write a name with suffix compression against previously written names.
  void name(const std::string& presentation) {
    const std::string norm = normalize_name(presentation);
    if (norm.size() > kMaxNameLength) {
      throw std::invalid_argument{"dns::encode: name too long: " + norm};
    }
    std::string_view rest{norm};
    while (!rest.empty()) {
      const auto it = offsets_.find(std::string{rest});
      if (it != offsets_.end() && it->second < 0x3FFF) {
        u16(static_cast<std::uint16_t>(0xC000 | it->second));
        return;
      }
      if (buf_.size() < 0x3FFF) offsets_.emplace(std::string{rest}, buf_.size());
      const std::size_t dot = rest.find('.');
      const std::string_view label = dot == std::string_view::npos ? rest : rest.substr(0, dot);
      if (label.empty() || label.size() > kMaxLabelLength) {
        throw std::invalid_argument{"dns::encode: bad label in name: " + norm};
      }
      u8(static_cast<std::uint8_t>(label.size()));
      for (const char c : label) buf_.push_back(static_cast<std::uint8_t>(c));
      rest = dot == std::string_view::npos ? std::string_view{} : rest.substr(dot + 1);
    }
    u8(0);  // root label
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::unordered_map<std::string, std::size_t> offsets_;
};

void encode_rr(Encoder& enc, const ResourceRecord& rr) {
  enc.name(rr.name);
  enc.u16(static_cast<std::uint16_t>(rr.type));
  enc.u16(1);  // class IN
  enc.u32(rr.ttl);
  const std::size_t len_at = enc.size();
  enc.u16(0);  // rdlength placeholder
  const std::size_t rdata_start = enc.size();
  switch (rr.type) {
    case QType::kA:
      enc.u32(rr.address.value());
      break;
    case QType::kAaaa:
      for (const std::uint8_t b : rr.address6.bytes) enc.u8(b);
      break;
    case QType::kCname:
    case QType::kNs:
    case QType::kPtr:
      enc.name(rr.target);
      break;
    case QType::kMx:
      enc.u16(rr.mx_preference);
      enc.name(rr.target);
      break;
    case QType::kTxt: {
      // Single character-string; split longer text into 255-byte chunks.
      std::string_view text{rr.target};
      if (text.empty()) enc.u8(0);
      while (!text.empty()) {
        const std::size_t n = std::min<std::size_t>(text.size(), 255);
        enc.u8(static_cast<std::uint8_t>(n));
        for (std::size_t i = 0; i < n; ++i) enc.u8(static_cast<std::uint8_t>(text[i]));
        text.remove_prefix(n);
      }
      break;
    }
  }
  enc.patch_u16(len_at, static_cast<std::uint16_t>(enc.size() - rdata_start));
}

// ---------------------------------------------------------------- decoding

class Decoder {
 public:
  explicit Decoder(const std::vector<std::uint8_t>& wire) : wire_{wire} {}

  bool u8(std::uint8_t& out) noexcept {
    if (pos_ >= wire_.size()) return false;
    out = wire_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& out) noexcept {
    std::uint8_t a = 0;
    std::uint8_t b = 0;
    if (!u8(a) || !u8(b)) return false;
    out = static_cast<std::uint16_t>((a << 8) | b);
    return true;
  }
  bool u32(std::uint32_t& out) noexcept {
    std::uint16_t a = 0;
    std::uint16_t b = 0;
    if (!u16(a) || !u16(b)) return false;
    out = (static_cast<std::uint32_t>(a) << 16) | b;
    return true;
  }

  std::size_t pos() const noexcept { return pos_; }
  bool skip(std::size_t n) noexcept {
    if (pos_ + n > wire_.size()) return false;
    pos_ += n;
    return true;
  }

  /// Decode a (possibly compressed) name starting at the current position.
  bool name(std::string& out) {
    out.clear();
    std::size_t pos = pos_;
    bool jumped = false;
    std::size_t jumps = 0;
    while (true) {
      if (pos >= wire_.size()) return false;
      const std::uint8_t len = wire_[pos];
      if ((len & 0xC0) == 0xC0) {
        if (pos + 1 >= wire_.size()) return false;
        const std::size_t target =
            (static_cast<std::size_t>(len & 0x3F) << 8) | wire_[pos + 1];
        if (!jumped) pos_ = pos + 2;
        jumped = true;
        if (++jumps > 64 || target >= wire_.size()) return false;  // loop guard
        pos = target;
        continue;
      }
      if ((len & 0xC0) != 0) return false;  // reserved label types
      if (len == 0) {
        if (!jumped) pos_ = pos + 1;
        return out.size() <= kMaxNameLength;
      }
      if (pos + 1 + len > wire_.size()) return false;
      if (!out.empty()) out += '.';
      for (std::size_t i = 0; i < len; ++i) {
        out += static_cast<char>(std::tolower(wire_[pos + 1 + i]));
      }
      if (out.size() > kMaxNameLength) return false;
      pos += 1 + len;
    }
  }

 private:
  const std::vector<std::uint8_t>& wire_;
  std::size_t pos_ = 0;
};

bool decode_rr(Decoder& dec, ResourceRecord& rr) {
  if (!dec.name(rr.name)) return false;
  std::uint16_t type = 0;
  std::uint16_t klass = 0;
  std::uint16_t rdlength = 0;
  if (!dec.u16(type) || !dec.u16(klass) || !dec.u32(rr.ttl) || !dec.u16(rdlength)) return false;
  rr.type = static_cast<QType>(type);
  const std::size_t rdata_end = dec.pos() + rdlength;
  switch (rr.type) {
    case QType::kA: {
      std::uint32_t v = 0;
      if (rdlength != 4 || !dec.u32(v)) return false;
      rr.address = Ipv4{v};
      break;
    }
    case QType::kAaaa: {
      if (rdlength != 16) return false;
      for (auto& b : rr.address6.bytes) {
        if (!dec.u8(b)) return false;
      }
      break;
    }
    case QType::kCname:
    case QType::kNs:
    case QType::kPtr:
      if (!dec.name(rr.target)) return false;
      break;
    case QType::kMx:
      if (!dec.u16(rr.mx_preference) || !dec.name(rr.target)) return false;
      break;
    case QType::kTxt: {
      rr.target.clear();
      while (dec.pos() < rdata_end) {
        std::uint8_t n = 0;
        if (!dec.u8(n)) return false;
        for (std::size_t i = 0; i < n; ++i) {
          std::uint8_t c = 0;
          if (!dec.u8(c)) return false;
          rr.target += static_cast<char>(c);
        }
      }
      break;
    }
    default:
      // Unknown type: skip rdata, keep the shell.
      if (!dec.skip(rdlength)) return false;
      return dec.pos() == rdata_end;
  }
  return dec.pos() == rdata_end;
}

}  // namespace

std::vector<std::uint8_t> encode(const Message& msg) {
  Encoder enc;
  enc.u16(msg.id);
  std::uint16_t flags = 0;
  if (msg.is_response) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>((msg.opcode & 0x0F) << 11);
  if (msg.authoritative) flags |= 0x0400;
  if (msg.truncated) flags |= 0x0200;
  if (msg.recursion_desired) flags |= 0x0100;
  if (msg.recursion_available) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(msg.rcode) & 0x0F;
  enc.u16(flags);
  enc.u16(static_cast<std::uint16_t>(msg.questions.size()));
  enc.u16(static_cast<std::uint16_t>(msg.answers.size()));
  enc.u16(static_cast<std::uint16_t>(msg.authority.size()));
  enc.u16(static_cast<std::uint16_t>(msg.additional.size()));
  for (const auto& q : msg.questions) {
    enc.name(q.name);
    enc.u16(static_cast<std::uint16_t>(q.type));
    enc.u16(1);  // class IN
  }
  for (const auto& rr : msg.answers) encode_rr(enc, rr);
  for (const auto& rr : msg.authority) encode_rr(enc, rr);
  for (const auto& rr : msg.additional) encode_rr(enc, rr);
  return std::move(enc).take();
}

std::optional<Message> decode(const std::vector<std::uint8_t>& wire) {
  Decoder dec{wire};
  Message msg;
  std::uint16_t flags = 0;
  std::uint16_t qd = 0;
  std::uint16_t an = 0;
  std::uint16_t ns = 0;
  std::uint16_t ar = 0;
  if (!dec.u16(msg.id) || !dec.u16(flags) || !dec.u16(qd) || !dec.u16(an) || !dec.u16(ns) ||
      !dec.u16(ar)) {
    return std::nullopt;
  }
  msg.is_response = (flags & 0x8000) != 0;
  msg.opcode = static_cast<std::uint8_t>((flags >> 11) & 0x0F);
  msg.authoritative = (flags & 0x0400) != 0;
  msg.truncated = (flags & 0x0200) != 0;
  msg.recursion_desired = (flags & 0x0100) != 0;
  msg.recursion_available = (flags & 0x0080) != 0;
  msg.rcode = static_cast<RCode>(flags & 0x0F);

  msg.questions.resize(qd);
  for (auto& q : msg.questions) {
    std::uint16_t type = 0;
    std::uint16_t klass = 0;
    if (!dec.name(q.name) || !dec.u16(type) || !dec.u16(klass)) return std::nullopt;
    q.type = static_cast<QType>(type);
  }
  const auto decode_section = [&dec](std::vector<ResourceRecord>& section, std::uint16_t count) {
    section.resize(count);
    for (auto& rr : section) {
      if (!decode_rr(dec, rr)) return false;
    }
    return true;
  };
  if (!decode_section(msg.answers, an) || !decode_section(msg.authority, ns) ||
      !decode_section(msg.additional, ar)) {
    return std::nullopt;
  }
  return msg;
}

Message make_query(std::uint16_t id, const std::string& qname, QType qtype) {
  Message msg;
  msg.id = id;
  msg.is_response = false;
  msg.recursion_desired = true;
  msg.questions.push_back(Question{normalize_name(qname), qtype});
  return msg;
}

Message make_response(const Message& query, std::vector<ResourceRecord> answers, RCode rcode) {
  Message msg;
  msg.id = query.id;
  msg.is_response = true;
  msg.recursion_desired = query.recursion_desired;
  msg.recursion_available = true;
  msg.rcode = rcode;
  msg.questions = query.questions;
  msg.answers = std::move(answers);
  return msg;
}

}  // namespace dnsembed::dns
