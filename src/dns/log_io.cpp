#include "dns/log_io.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/strings.hpp"

namespace dnsembed::dns {

namespace {

std::string join_or_dash(const std::vector<std::string>& items) {
  if (items.empty()) return "-";
  return util::join(items, ";");
}

template <typename T>
bool parse_number(std::string_view text, T& out) noexcept {
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

}  // namespace

std::string format_log_entry(const LogEntry& entry) {
  std::string out;
  out.reserve(96);
  out += std::to_string(entry.timestamp);
  out += '\t';
  out += entry.host;
  out += '\t';
  out += entry.qname;
  out += '\t';
  out += qtype_name(entry.qtype);
  out += '\t';
  out += std::to_string(static_cast<unsigned>(entry.rcode));
  out += '\t';
  out += std::to_string(entry.ttl);
  out += '\t';
  if (entry.addresses.empty()) {
    out += '-';
  } else {
    for (std::size_t i = 0; i < entry.addresses.size(); ++i) {
      if (i != 0) out += ';';
      out += entry.addresses[i].to_string();
    }
  }
  out += '\t';
  out += join_or_dash(entry.cnames);
  return out;
}

std::optional<LogEntry> parse_log_entry(std::string_view line) {
  const auto fields = util::split(line, '\t');
  if (fields.size() != 8) return std::nullopt;
  LogEntry entry;
  if (!parse_number(fields[0], entry.timestamp)) return std::nullopt;
  entry.host = fields[1];
  entry.qname = fields[2];
  if (entry.host.empty() || entry.qname.empty()) return std::nullopt;
  entry.qtype = qtype_from_name(fields[3]);
  unsigned rcode = 0;
  if (!parse_number(fields[4], rcode) || rcode > 15) return std::nullopt;
  entry.rcode = static_cast<RCode>(rcode);
  if (!parse_number(fields[5], entry.ttl)) return std::nullopt;
  if (fields[6] != "-") {
    for (const auto& token : util::split(fields[6], ';')) {
      const auto ip = Ipv4::parse(token);
      if (!ip) return std::nullopt;
      entry.addresses.push_back(*ip);
    }
  }
  if (fields[7] != "-") {
    entry.cnames = util::split(fields[7], ';');
  }
  return entry;
}

void LogWriter::write(const LogEntry& entry) { *out_ << format_log_entry(entry) << '\n'; }

std::optional<LogEntry> LogReader::next() {
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_no_;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto entry = parse_log_entry(line);
    if (!entry) {
      throw std::runtime_error{"malformed DNS log line " + std::to_string(line_no_)};
    }
    return entry;
  }
  return std::nullopt;
}

}  // namespace dnsembed::dns
