// IPv4 address value type used throughout the pipeline (resolved addresses,
// host identities, netflow endpoints).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dnsembed::dns {

/// IPv4 address stored as a host-order 32-bit integer.
class Ipv4 {
 public:
  constexpr Ipv4() noexcept = default;
  constexpr explicit Ipv4(std::uint32_t value) noexcept : value_{value} {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) noexcept
      : value_{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}} {}

  constexpr std::uint32_t value() const noexcept { return value_; }

  /// "a.b.c.d" presentation form.
  std::string to_string() const;

  /// Parse dotted-quad; rejects anything malformed.
  static std::optional<Ipv4> parse(std::string_view text) noexcept;

  /// The /16 network prefix (used by Exposure's answer-diversity features).
  constexpr std::uint32_t prefix16() const noexcept { return value_ >> 16; }

  /// The /24 network prefix.
  constexpr std::uint32_t prefix24() const noexcept { return value_ >> 8; }

  friend constexpr bool operator==(Ipv4 a, Ipv4 b) noexcept { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Ipv4 a, Ipv4 b) noexcept { return a.value_ != b.value_; }
  friend constexpr bool operator<(Ipv4 a, Ipv4 b) noexcept { return a.value_ < b.value_; }

 private:
  std::uint32_t value_ = 0;
};

}  // namespace dnsembed::dns

template <>
struct std::hash<dnsembed::dns::Ipv4> {
  std::size_t operator()(dnsembed::dns::Ipv4 ip) const noexcept {
    // Finalizer from SplitMix64 for good avalanche on sequential pools.
    std::uint64_t z = ip.value();
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
