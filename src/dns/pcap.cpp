#include "dns/pcap.hpp"

#include <array>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace dnsembed::dns {

namespace {

constexpr std::uint32_t kMagicMicro = 0xa1b2c3d4;
constexpr std::uint32_t kMagicMicroSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNano = 0xa1b23c4d;
constexpr std::uint32_t kLinkTypeEthernet = 1;

void put_u16(std::ostream& out, std::uint16_t v) {
  const char bytes[2] = {static_cast<char>(v & 0xFF), static_cast<char>(v >> 8)};
  out.write(bytes, 2);
}

void put_u32(std::ostream& out, std::uint32_t v) {
  const char bytes[4] = {static_cast<char>(v & 0xFF), static_cast<char>((v >> 8) & 0xFF),
                         static_cast<char>((v >> 16) & 0xFF),
                         static_cast<char>((v >> 24) & 0xFF)};
  out.write(bytes, 4);
}

bool get_u32(std::istream& in, std::uint32_t& v, bool swapped) {
  std::array<unsigned char, 4> b{};
  if (!in.read(reinterpret_cast<char*>(b.data()), 4)) return false;
  v = swapped ? (std::uint32_t{b[0]} << 24) | (std::uint32_t{b[1]} << 16) |
                    (std::uint32_t{b[2]} << 8) | b[3]
              : (std::uint32_t{b[3]} << 24) | (std::uint32_t{b[2]} << 16) |
                    (std::uint32_t{b[1]} << 8) | b[0];
  return true;
}

}  // namespace

PcapWriter::PcapWriter(std::ostream& out, std::uint32_t snaplen) : out_{&out} {
  put_u32(*out_, kMagicMicro);
  put_u16(*out_, 2);  // version major
  put_u16(*out_, 4);  // version minor
  put_u32(*out_, 0);  // thiszone
  put_u32(*out_, 0);  // sigfigs
  put_u32(*out_, snaplen);
  put_u32(*out_, kLinkTypeEthernet);
}

void PcapWriter::write(const PcapPacket& packet) {
  put_u32(*out_, static_cast<std::uint32_t>(packet.ts_sec));
  put_u32(*out_, static_cast<std::uint32_t>(packet.ts_usec));
  put_u32(*out_, static_cast<std::uint32_t>(packet.data.size()));  // incl_len
  put_u32(*out_, static_cast<std::uint32_t>(packet.data.size()));  // orig_len
  out_->write(reinterpret_cast<const char*>(packet.data.data()),
              static_cast<std::streamsize>(packet.data.size()));
  ++count_;
}

PcapReader::PcapReader(std::istream& in) : in_{&in} {
  std::uint32_t magic = 0;
  if (!get_u32(*in_, magic, false)) throw std::runtime_error{"pcap: missing global header"};
  if (magic == kMagicMicro) {
    swapped_ = false;
  } else if (magic == kMagicMicroSwapped) {
    swapped_ = true;
  } else if (magic == kMagicNano) {
    throw std::runtime_error{"pcap: nanosecond captures not supported"};
  } else {
    throw std::runtime_error{"pcap: bad magic"};
  }
  // Skip the remaining 20 header bytes, validating the link type.
  std::uint32_t version = 0;
  std::uint32_t zone = 0;
  std::uint32_t sigfigs = 0;
  std::uint32_t snaplen = 0;
  std::uint32_t linktype = 0;
  if (!get_u32(*in_, version, swapped_) || !get_u32(*in_, zone, swapped_) ||
      !get_u32(*in_, sigfigs, swapped_) || !get_u32(*in_, snaplen, swapped_) ||
      !get_u32(*in_, linktype, swapped_)) {
    throw std::runtime_error{"pcap: truncated global header"};
  }
  if (linktype != kLinkTypeEthernet) {
    throw std::runtime_error{"pcap: only LINKTYPE_ETHERNET supported"};
  }
}

std::optional<PcapPacket> PcapReader::next() {
  std::uint32_t ts_sec = 0;
  if (!get_u32(*in_, ts_sec, swapped_)) return std::nullopt;  // clean EOF
  std::uint32_t ts_usec = 0;
  std::uint32_t incl_len = 0;
  std::uint32_t orig_len = 0;
  if (!get_u32(*in_, ts_usec, swapped_) || !get_u32(*in_, incl_len, swapped_) ||
      !get_u32(*in_, orig_len, swapped_)) {
    throw std::runtime_error{"pcap: truncated record header"};
  }
  if (incl_len > 10 * 1024 * 1024) throw std::runtime_error{"pcap: absurd record length"};
  PcapPacket packet;
  packet.ts_sec = ts_sec;
  packet.ts_usec = static_cast<std::int32_t>(ts_usec);
  packet.data.resize(incl_len);
  if (!in_->read(reinterpret_cast<char*>(packet.data.data()),
                 static_cast<std::streamsize>(incl_len))) {
    throw std::runtime_error{"pcap: truncated packet body"};
  }
  return packet;
}

}  // namespace dnsembed::dns
