#include "dns/name.hpp"

#include <cctype>

namespace dnsembed::dns {

std::string normalize_name(std::string_view name) {
  if (!name.empty() && name.back() == '.') name.remove_suffix(1);
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view normalize_name_view(std::string_view name,
                                     std::span<char> buf) noexcept {
  if (!name.empty() && name.back() == '.') name.remove_suffix(1);
  std::size_t upper = name.size();
  for (std::size_t i = 0; i < name.size(); ++i) {
    const auto u = static_cast<unsigned char>(name[i]);
    if (u >= 'A' && u <= 'Z') {
      upper = i;
      break;
    }
  }
  if (upper == name.size()) return name;  // already lower-case
  if (name.size() > buf.size()) return {};
  for (std::size_t i = 0; i < upper; ++i) buf[i] = name[i];
  for (std::size_t i = upper; i < name.size(); ++i) {
    buf[i] = static_cast<char>(std::tolower(static_cast<unsigned char>(name[i])));
  }
  return {buf.data(), name.size()};
}

namespace {

bool is_label_char(char c) noexcept {
  const auto u = static_cast<unsigned char>(c);
  return std::isalnum(u) || c == '-' || c == '_';
}

}  // namespace

bool is_valid_name(std::string_view name) noexcept {
  if (name.empty() || name.size() > kMaxNameLength) return false;
  std::size_t label_len = 0;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (c == '.') {
      if (label_len == 0) return false;  // empty label
      label_len = 0;
      continue;
    }
    if (!is_label_char(c)) return false;
    if (label_len == 0 && c == '-') return false;            // leading hyphen
    if ((i + 1 == name.size() || name[i + 1] == '.') && c == '-') return false;  // trailing hyphen
    if (++label_len > kMaxLabelLength) return false;
  }
  return label_len > 0;  // no trailing dot in normalized form
}

std::vector<std::string_view> labels(std::string_view name) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= name.size()) {
    const std::size_t pos = name.find('.', start);
    if (pos == std::string_view::npos) {
      out.push_back(name.substr(start));
      break;
    }
    out.push_back(name.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::size_t label_count(std::string_view name) noexcept {
  if (name.empty()) return 0;
  std::size_t n = 1;
  for (const char c : name) {
    if (c == '.') ++n;
  }
  return n;
}

std::string_view top_level(std::string_view name) noexcept {
  const std::size_t pos = name.rfind('.');
  return pos == std::string_view::npos ? name : name.substr(pos + 1);
}

bool is_subdomain_of(std::string_view child, std::string_view parent) noexcept {
  if (parent.empty()) return false;
  if (child == parent) return true;
  if (child.size() <= parent.size()) return false;
  return child.substr(child.size() - parent.size()) == parent &&
         child[child.size() - parent.size() - 1] == '.';
}

}  // namespace dnsembed::dns
