// Domain-name handling: normalization, validation, and label access.
//
// Names are stored in presentation format ("www.example.com", lower-case,
// no trailing dot). Wire-format conversion lives in dns/wire.hpp.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dnsembed::dns {

/// Maximum presentation-format name length accepted (RFC 1035: 255 octets
/// wire, which bounds presentation length to 253).
inline constexpr std::size_t kMaxNameLength = 253;

/// Maximum label length (RFC 1035).
inline constexpr std::size_t kMaxLabelLength = 63;

/// Lower-case and strip one trailing dot. Does not validate.
std::string normalize_name(std::string_view name);

/// Zero-allocation normalize_name: when `name` is already normalized the
/// returned view aliases the input untouched; otherwise the normalized form
/// is written into `buf` (which must hold at least kMaxNameLength bytes) and
/// the view aliases `buf`. Names longer than kMaxNameLength after stripping
/// the trailing dot are returned as-is when already lower-case and truncated
/// to empty otherwise — they can never pass is_valid_name, so callers reject
/// them either way.
std::string_view normalize_name_view(std::string_view name,
                                     std::span<char> buf) noexcept;

/// RFC-1035 syntactic validity of a normalized name: non-empty labels of
/// <= 63 chars, total <= 253, characters restricted to LDH plus '_'
/// (accepted in the wild for service labels).
bool is_valid_name(std::string_view name) noexcept;

/// Split "www.example.com" into {"www", "example", "com"}.
std::vector<std::string_view> labels(std::string_view name);

/// Number of labels.
std::size_t label_count(std::string_view name) noexcept;

/// The final label ("com" for "www.example.com"), or empty.
std::string_view top_level(std::string_view name) noexcept;

/// True if child equals parent or is a subdomain of parent
/// ("a.b.com" is within "b.com" and "com").
bool is_subdomain_of(std::string_view child, std::string_view parent) noexcept;

}  // namespace dnsembed::dns
