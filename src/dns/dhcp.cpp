#include "dns/dhcp.hpp"

#include <algorithm>
#include <stdexcept>

namespace dnsembed::dns {

void DhcpTable::add_lease(DhcpLease lease) {
  if (lease.end <= lease.start) {
    throw std::invalid_argument{"DhcpTable: lease end must be after start"};
  }
  auto& leases = by_ip_[lease.ip];
  const auto it = std::lower_bound(
      leases.begin(), leases.end(), lease,
      [](const DhcpLease& a, const DhcpLease& b) { return a.start < b.start; });
  // Overlap checks against the neighbors around the insertion point.
  if (it != leases.begin() && std::prev(it)->end > lease.start) {
    throw std::invalid_argument{"DhcpTable: overlapping lease for IP " + lease.ip.to_string()};
  }
  if (it != leases.end() && it->start < lease.end) {
    throw std::invalid_argument{"DhcpTable: overlapping lease for IP " + lease.ip.to_string()};
  }
  by_mac_[lease.mac].push_back(lease);
  mac_sorted_ = false;
  leases.insert(it, std::move(lease));
  ++count_;
}

std::optional<Ipv4> DhcpTable::ip_for(const std::string& mac, std::int64_t t) const {
  const auto it = by_mac_.find(mac);
  if (it == by_mac_.end()) return std::nullopt;
  if (!mac_sorted_) {
    for (auto& [key, leases] : by_mac_) {
      std::sort(leases.begin(), leases.end(),
                [](const DhcpLease& a, const DhcpLease& b) { return a.start < b.start; });
    }
    mac_sorted_ = true;
  }
  const auto& leases = it->second;
  auto pos = std::upper_bound(
      leases.begin(), leases.end(), t,
      [](std::int64_t value, const DhcpLease& lease) { return value < lease.start; });
  if (pos == leases.begin()) return std::nullopt;
  --pos;
  if (t < pos->end) return pos->ip;
  return std::nullopt;
}

std::optional<std::string> DhcpTable::device_for(Ipv4 ip, std::int64_t t) const {
  const auto it = by_ip_.find(ip);
  if (it == by_ip_.end()) return std::nullopt;
  const auto& leases = it->second;
  // First lease with start > t, then step back.
  auto pos = std::upper_bound(
      leases.begin(), leases.end(), t,
      [](std::int64_t value, const DhcpLease& lease) { return value < lease.start; });
  if (pos == leases.begin()) return std::nullopt;
  --pos;
  if (t < pos->end) return pos->mac;
  return std::nullopt;
}

std::vector<DhcpLease> DhcpTable::leases_for(Ipv4 ip) const {
  const auto it = by_ip_.find(ip);
  return it == by_ip_.end() ? std::vector<DhcpLease>{} : it->second;
}

}  // namespace dnsembed::dns
