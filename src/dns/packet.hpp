// Ethernet + IPv4 + UDP encapsulation for DNS payloads: build link-layer
// frames the pcap layer can store, and strip them back off. IPv4 header
// checksums are computed on encode and verified on decode.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dns/ipv4.hpp"

namespace dnsembed::dns {

/// One UDP datagram with its addressing (what the DNS collector consumes).
struct UdpDatagram {
  Ipv4 src_ip{};
  Ipv4 dst_ip{};
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const UdpDatagram&, const UdpDatagram&) = default;
};

/// Wrap a datagram in Ethernet(II)/IPv4/UDP. MACs are synthetic constants
/// (the collector never looks at them). UDP checksum is set to 0
/// ("not computed", legal for UDP over IPv4).
std::vector<std::uint8_t> encapsulate(const UdpDatagram& datagram);

/// Parse an Ethernet frame down to the UDP payload. Returns nullopt for
/// non-IPv4 ethertypes, non-UDP protocols, bad lengths, IPv4 options we
/// do not expect, fragments, or a wrong IPv4 header checksum.
std::optional<UdpDatagram> decapsulate(std::span<const std::uint8_t> frame);

/// The IPv4 ones-complement header checksum (exposed for tests).
std::uint16_t ipv4_checksum(std::span<const std::uint8_t> header) noexcept;

}  // namespace dnsembed::dns
