// Text (TSV) serialization of joined DNS log entries, so traces can be
// written to disk once and re-read by experiments.
//
// Format, one entry per line:
//   timestamp \t host \t qname \t qtype \t rcode \t ttl \t ip;ip;... \t cname;cname;...
// Empty address/cname lists serialize as "-".
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "dns/log_record.hpp"

namespace dnsembed::dns {

/// Render one entry as a TSV line (no trailing newline).
std::string format_log_entry(const LogEntry& entry);

/// Parse one TSV line; nullopt for malformed input.
std::optional<LogEntry> parse_log_entry(std::string_view line);

/// Stream writer.
class LogWriter {
 public:
  explicit LogWriter(std::ostream& out) : out_{&out} {}
  void write(const LogEntry& entry);

 private:
  std::ostream* out_;
};

/// Stream reader; skips blank lines, throws std::runtime_error on a
/// malformed line (with its line number).
class LogReader {
 public:
  explicit LogReader(std::istream& in) : in_{&in} {}

  /// Read the next entry; nullopt at end of stream.
  std::optional<LogEntry> next();

 private:
  std::istream* in_;
  std::size_t line_no_ = 0;
};

}  // namespace dnsembed::dns
