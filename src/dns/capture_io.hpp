// Convenience round trip between joined log entries and pcap captures:
// export writes each entry as a query/response packet pair (client IPs
// taken from the DHCP table); import runs the reader + decapsulation +
// collector chain back to entries.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "dns/collector.hpp"
#include "dns/dhcp.hpp"
#include "dns/log_record.hpp"

namespace dnsembed::dns {

struct CaptureExportOptions {
  Ipv4 resolver{10, 0, 0, 53};
  /// Fallback client IP when the DHCP table has no lease for a host
  /// (e.g. statically addressed servers).
  Ipv4 fallback_client{10, 99, 0, 1};
};

/// Write entries as an Ethernet pcap capture. Returns packets written
/// (2 per answered entry; 1 for entries the resolver never answered).
std::size_t export_pcap(std::ostream& out, std::span<const LogEntry> entries,
                        const DhcpTable& dhcp, const CaptureExportOptions& options = {});

/// Streaming flavor of export_pcap: construct once (writes the pcap global
/// header), then feed entries one at a time. Used by sinks that packetize
/// a live event stream without buffering it.
class EntryPacketWriter {
 public:
  EntryPacketWriter(std::ostream& out, CaptureExportOptions options = {});

  /// Write the query (and response, unless the entry was never answered).
  void write(const LogEntry& entry, const DhcpTable& dhcp);

  std::size_t packets_written() const noexcept;

 private:
  class Impl;
  std::shared_ptr<Impl> impl_;  // shared so the writer stays copyable
};

struct CaptureImportOptions {
  /// Collector knobs (see DnsCollector).
  std::int64_t collector_timeout_seconds = 30;
  std::size_t max_pending = DnsCollector::kDefaultMaxPending;
};

struct CaptureImportResult {
  std::vector<LogEntry> entries;
  DnsCollector::Stats stats;
  /// Pcap records successfully framed (whether or not they decoded).
  std::size_t packets = 0;
  /// Frames that were not well-formed Ethernet/IPv4/UDP (dropped before
  /// the collector; DNS-level failures are stats.malformed instead).
  std::size_t undecoded_frames = 0;
  /// True when the capture ended with a framing error (bad header,
  /// truncated record, ...) instead of a clean EOF. Entries parsed up to
  /// the fault are still returned; `error` holds the detail.
  bool truncated = false;
  std::string error;
};

/// Parse a pcap capture back into joined entries. `dhcp` may be null
/// (hosts stay IP strings). Never throws on malformed pcap framing:
/// parsing stops at the fault and the partial result carries
/// truncated=true plus the error detail, so a crashed capture still
/// yields every entry that preceded the damage.
CaptureImportResult import_pcap(std::istream& in, const DhcpTable* dhcp = nullptr,
                                const CaptureImportOptions& options = {});

}  // namespace dnsembed::dns
