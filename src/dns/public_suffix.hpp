// Public-suffix rules and effective second-level domain (e2LD) extraction.
//
// The paper aggregates FQDNs to e2LDs ("maps.google.com" -> "google.com",
// "www.bbc.uk.co" -> "bbc.uk.co"). We implement the standard public-suffix
// algorithm (normal rules, "*." wildcard rules, "!" exception rules) over an
// embedded rule set covering the TLDs that appear in the paper and in the
// trace simulator; custom rule sets can be supplied for tests or other data.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dnsembed::dns {

class PublicSuffixList {
 public:
  /// Build from explicit rules in publicsuffix.org syntax
  /// ("com", "co.uk", "*.ck", "!www.ck").
  explicit PublicSuffixList(const std::vector<std::string>& rules);

  /// The built-in rule set (common gTLDs/ccTLDs plus the multi-level
  /// suffixes used by the paper and the trace simulator).
  static const PublicSuffixList& builtin();

  /// Longest matching public suffix of a normalized name, following the
  /// publicsuffix.org algorithm (wildcards and exceptions included). If no
  /// rule matches, the top-level label is treated as the suffix ("*" rule).
  std::string public_suffix(std::string_view name) const;

  /// Effective 2LD: the public suffix plus one label. Returns nullopt when
  /// the name *is* a public suffix (no registrable part).
  std::optional<std::string> e2ld(std::string_view name) const;

  /// e2LD with fallback: names that are themselves suffixes or invalid are
  /// returned normalized as-is. Convenient for bulk log aggregation.
  std::string e2ld_or_self(std::string_view name) const;

  /// Zero-allocation public_suffix over an already-normalized name: every
  /// PSL result (rule match, wildcard expansion, exception remainder, or the
  /// default top-level label) is a contiguous suffix of the input, so the
  /// returned view aliases `name`. The serve hot path uses this.
  std::string_view public_suffix_of(std::string_view name) const noexcept;

  /// Zero-allocation e2ld over an already-normalized name; the returned view
  /// aliases `name`. Empty when the name is invalid or has no registrable
  /// part (same cases where e2ld returns nullopt).
  std::string_view e2ld_view(std::string_view name) const noexcept;

 private:
  struct TransparentHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  using RuleSet =
      std::unordered_set<std::string, TransparentHash, std::equal_to<>>;

  RuleSet rules_;       // normal rules
  RuleSet wildcards_;   // "*.X" stored as "X"
  RuleSet exceptions_;  // "!Y" stored as "Y"
};

}  // namespace dnsembed::dns
