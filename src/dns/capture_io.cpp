#include "dns/capture_io.hpp"

#include <exception>

#include "dns/packet.hpp"
#include "dns/packetize.hpp"
#include "dns/pcap.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace dnsembed::dns {

class EntryPacketWriter::Impl {
 public:
  Impl(std::ostream& out, CaptureExportOptions options)
      : options_{options}, writer_{out} {}

  void write(const LogEntry& entry, const DhcpTable& dhcp) {
    const Ipv4 client =
        dhcp.ip_for(entry.host, entry.timestamp)
            .value_or(Ipv4::parse(entry.host).value_or(options_.fallback_client));
    PacketizeOptions packetize_options;
    packetize_options.resolver = options_.resolver;
    const auto [query, response] = packetize(entry, client, port_, txn_, packetize_options);
    // Wrap ids/ports so long traces stay valid.
    txn_ = txn_ == 0xFFFF ? 1 : static_cast<std::uint16_t>(txn_ + 1);
    port_ = port_ >= 60999 ? 32768 : static_cast<std::uint16_t>(port_ + 1);

    PcapPacket packet;
    packet.ts_sec = entry.timestamp;
    packet.data = encapsulate(query);
    writer_.write(packet);
    if (entry.rcode != RCode::kServFail) {
      packet.ts_sec = entry.timestamp;
      packet.ts_usec = 1000;  // response 1ms later
      packet.data = encapsulate(response);
      writer_.write(packet);
    }
  }

  std::size_t packets_written() const noexcept { return writer_.packets_written(); }

 private:
  CaptureExportOptions options_;
  PcapWriter writer_;
  std::uint16_t txn_ = 1;
  std::uint16_t port_ = 32768;
};

EntryPacketWriter::EntryPacketWriter(std::ostream& out, CaptureExportOptions options)
    : impl_{std::make_shared<Impl>(out, options)} {}

void EntryPacketWriter::write(const LogEntry& entry, const DhcpTable& dhcp) {
  impl_->write(entry, dhcp);
}

std::size_t EntryPacketWriter::packets_written() const noexcept {
  return impl_->packets_written();
}

std::size_t export_pcap(std::ostream& out, std::span<const LogEntry> entries,
                        const DhcpTable& dhcp, const CaptureExportOptions& options) {
  EntryPacketWriter writer{out, options};
  for (const auto& entry : entries) writer.write(entry, dhcp);
  return writer.packets_written();
}

CaptureImportResult import_pcap(std::istream& in, const DhcpTable* dhcp,
                                const CaptureImportOptions& options) {
  static obs::Counter& packets_counter = obs::metrics().counter("dns.import.packets");
  static obs::Counter& undecoded_counter = obs::metrics().counter("dns.import.undecoded_frames");
  static obs::Counter& truncated_counter = obs::metrics().counter("dns.import.truncated_captures");
  static util::LimitedLogger undecoded_log{8};

  CaptureImportResult result;
  DnsCollector collector{dhcp, options.collector_timeout_seconds, options.max_pending};
  try {
    PcapReader reader{in};
    while (const auto packet = reader.next()) {
      ++result.packets;
      packets_counter.add(1);
      if (const auto datagram = decapsulate(packet->data)) {
        collector.on_datagram(packet->ts_sec, *datagram);
      } else {
        ++result.undecoded_frames;
        undecoded_counter.add(1);
        undecoded_log.warn() << "import_pcap: undecoded frame #" << result.packets << " ("
                             << packet->data.size() << " bytes, not IPv4/UDP)";
      }
    }
  } catch (const std::exception& e) {
    // Malformed framing mid-file: keep everything parsed so far and report
    // the damage instead of discarding the capture.
    result.truncated = true;
    result.error = e.what();
    truncated_counter.add(1);
    util::log_warn() << "import_pcap: capture truncated after " << result.packets
                     << " packets: " << e.what();
  }
  collector.flush_all();
  result.stats = collector.stats();
  result.entries = collector.take_entries();
  return result;
}

}  // namespace dnsembed::dns
