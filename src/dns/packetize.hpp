// The inverse of the collector: turn a joined LogEntry back into the
// query/response datagram pair that would have produced it. Used by the
// simulator's pcap output and by round-trip tests of the whole collection
// path (entry -> packets -> pcap -> collector -> entry).
#pragma once

#include <cstdint>
#include <utility>

#include "dns/log_record.hpp"
#include "dns/packet.hpp"

namespace dnsembed::dns {

struct PacketizeOptions {
  /// The campus resolver the clients talk to.
  Ipv4 resolver{10, 0, 0, 53};
};

/// Build the (query, response) datagrams for an entry. `client` is the
/// client's IP at the entry's time (from the DHCP table), `client_port`
/// the ephemeral source port, `txn_id` the DNS transaction id. The
/// response reconstructs the CNAME chain and A records with entry.ttl.
/// Timestamps are not part of UdpDatagram — the caller stamps the pcap
/// records (convention: response at entry.timestamp, or +1s).
std::pair<UdpDatagram, UdpDatagram> packetize(const LogEntry& entry, Ipv4 client,
                                              std::uint16_t client_port, std::uint16_t txn_id,
                                              const PacketizeOptions& options = {});

}  // namespace dnsembed::dns
