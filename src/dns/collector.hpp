// The paper's pre-processing component: consume captured DNS datagrams
// from the campus edge, pair each query with its response by
// (client address, client port, transaction id, qname), attribute the
// client to a stable device via the DHCP table, and emit joined LogEntry
// records for the behavioral-modeling stage.
//
// Unanswered queries are expired after a timeout and emitted with
// RCode::kServFail and no answers — the query still evidences host-domain
// interaction for the HDBG.
//
// The pending-query table is bounded (max_pending): a flood of unanswered
// queries evicts the oldest pending entries (emitted as unanswered, counted
// in Stats::evicted) instead of growing memory without bound. Every
// datagram lands in exactly one Stats bucket, and every accepted query
// resolves to exactly one outcome, so:
//   query_packets == matched + expired_queries + evicted
//                    + duplicate_queries + pending()
//   response_packets == matched + orphan_responses
//   total datagrams == query_packets + response_packets + malformed + ignored
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dns/dhcp.hpp"
#include "dns/log_record.hpp"
#include "dns/packet.hpp"

namespace dnsembed::dns {

struct Message;  // dns/wire.hpp

class DnsCollector {
 public:
  struct Stats {
    std::size_t query_packets = 0;
    std::size_t response_packets = 0;
    std::size_t matched = 0;
    std::size_t orphan_responses = 0;   // response with no pending query
    std::size_t expired_queries = 0;    // queries that never got an answer
    std::size_t malformed = 0;          // datagrams that failed to parse
    std::size_t ignored = 0;            // not DNS (wrong ports)
    std::size_t evicted = 0;            // oldest pending dropped at the cap
    std::size_t duplicate_queries = 0;  // retransmission replaced a pending query
  };

  static constexpr std::size_t kDefaultMaxPending = 1'000'000;

  /// dhcp may be null: hosts are then identified by client IP string.
  /// max_pending bounds the pending-query table (>= 1).
  explicit DnsCollector(const DhcpTable* dhcp = nullptr, std::int64_t timeout_seconds = 30,
                        std::size_t max_pending = kDefaultMaxPending);

  /// Feed one captured datagram with its capture timestamp.
  void on_datagram(std::int64_t ts, const UdpDatagram& datagram);

  /// Expire pending queries older than the timeout relative to `now`.
  void flush(std::int64_t now);

  /// Expire everything still pending (end of capture).
  void flush_all();

  /// Completed entries accumulated so far (ordered by completion).
  std::vector<LogEntry> take_entries();

  const Stats& stats() const noexcept { return stats_; }
  std::size_t pending() const noexcept { return pending_.size(); }
  std::size_t max_pending() const noexcept { return max_pending_; }

 private:
  struct Key {
    std::uint32_t client_ip = 0;
    std::uint16_t client_port = 0;
    std::uint16_t txn_id = 0;
    std::string qname;

    friend auto operator<=>(const Key&, const Key&) = default;
  };

  struct PendingQuery {
    std::int64_t ts = 0;
    QType qtype = QType::kA;
    std::uint64_t seq = 0;  // arrival order, for oldest-first eviction
  };

  std::string host_for(Ipv4 client, std::int64_t ts) const;
  void emit(const Key& key, const PendingQuery& query, const Message* response);
  void evict_oldest();

  const DhcpTable* dhcp_;
  std::int64_t timeout_;
  std::size_t max_pending_;
  std::uint64_t next_seq_ = 0;
  std::map<Key, PendingQuery> pending_;
  // Arrival-ordered index into pending_ (std::map keys are address-stable).
  std::map<std::uint64_t, const Key*> by_seq_;
  std::vector<LogEntry> completed_;
  Stats stats_;
};

}  // namespace dnsembed::dns
