// Classic libpcap file format (the 24-byte global header + 16-byte
// per-record headers, LINKTYPE_ETHERNET). The paper's collection layer
// captures DNS packets at the campus edge; this module lets the simulator
// write capture files and the collector read them back, interoperable with
// tcpdump/wireshark.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

namespace dnsembed::dns {

struct PcapPacket {
  std::int64_t ts_sec = 0;
  std::int32_t ts_usec = 0;
  std::vector<std::uint8_t> data;  // link-layer frame

  friend bool operator==(const PcapPacket&, const PcapPacket&) = default;
};

/// Writes the global header on construction (microsecond timestamps,
/// little-endian magic 0xa1b2c3d4, LINKTYPE_ETHERNET).
class PcapWriter {
 public:
  explicit PcapWriter(std::ostream& out, std::uint32_t snaplen = 65535);

  void write(const PcapPacket& packet);

  std::size_t packets_written() const noexcept { return count_; }

 private:
  std::ostream* out_;
  std::size_t count_ = 0;
};

/// Reads classic pcap; validates the magic (both byte orders of the
/// microsecond magic are accepted; nanosecond captures are rejected).
class PcapReader {
 public:
  /// Throws std::runtime_error on a bad global header.
  explicit PcapReader(std::istream& in);

  /// Next packet, or nullopt at a clean end of file. Throws on a
  /// truncated record.
  std::optional<PcapPacket> next();

  bool swapped() const noexcept { return swapped_; }

 private:
  std::istream* in_;
  bool swapped_ = false;
};

}  // namespace dnsembed::dns
