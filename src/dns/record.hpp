// DNS record model: query types, response codes, and resource records with
// typed RDATA. Shared by the wire codec, the log layer, and the simulator.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "dns/ipv4.hpp"

namespace dnsembed::dns {

/// Query/record types we model (subset of RFC 1035/3596).
enum class QType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kPtr = 12,
  kMx = 15,
  kTxt = 16,
  kAaaa = 28,
};

/// Response codes (RFC 1035 §4.1.1).
enum class RCode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

std::string_view qtype_name(QType t) noexcept;

/// Parse "A", "CNAME", ... (case-insensitive); returns kA for unknown input.
QType qtype_from_name(std::string_view name) noexcept;

/// IPv6 address as raw bytes (we only need equality/printing, not math).
struct Ipv6Bytes {
  std::array<std::uint8_t, 16> bytes{};

  friend bool operator==(const Ipv6Bytes&, const Ipv6Bytes&) = default;
};

/// A resource record (name, type, ttl, typed rdata). Class is implicitly IN.
/// Which payload field is meaningful depends on `type`:
///   kA -> address; kAaaa -> address6; kCname/kNs/kPtr -> target (a name);
///   kTxt -> target (free text); kMx -> mx_preference + target (exchange).
struct ResourceRecord {
  std::string name;  // owner name, normalized presentation form
  QType type = QType::kA;
  std::uint32_t ttl = 0;
  Ipv4 address{};
  Ipv6Bytes address6{};
  std::string target;
  std::uint16_t mx_preference = 0;

  friend bool operator==(const ResourceRecord&, const ResourceRecord&) = default;
};

/// A question entry.
struct Question {
  std::string name;
  QType type = QType::kA;

  friend bool operator==(const Question&, const Question&) = default;
};

}  // namespace dnsembed::dns
