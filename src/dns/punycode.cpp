#include "dns/punycode.hpp"

#include <limits>

namespace dnsembed::dns {

namespace {

// RFC 3492 parameters.
constexpr std::uint32_t kBase = 36;
constexpr std::uint32_t kTMin = 1;
constexpr std::uint32_t kTMax = 26;
constexpr std::uint32_t kSkew = 38;
constexpr std::uint32_t kDamp = 700;
constexpr std::uint32_t kInitialBias = 72;
constexpr std::uint32_t kInitialN = 128;
constexpr std::uint32_t kMaxCodePoint = 0x10FFFF;

std::uint32_t adapt(std::uint32_t delta, std::uint32_t num_points, bool first_time) {
  delta = first_time ? delta / kDamp : delta / 2;
  delta += delta / num_points;
  std::uint32_t k = 0;
  while (delta > ((kBase - kTMin) * kTMax) / 2) {
    delta /= kBase - kTMin;
    k += kBase;
  }
  return k + (((kBase - kTMin + 1) * delta) / (delta + kSkew));
}

/// Digit value of a basic code point; kBase for invalid characters.
std::uint32_t digit_value(char c) noexcept {
  if (c >= 'a' && c <= 'z') return static_cast<std::uint32_t>(c - 'a');
  if (c >= 'A' && c <= 'Z') return static_cast<std::uint32_t>(c - 'A');
  if (c >= '0' && c <= '9') return static_cast<std::uint32_t>(c - '0') + 26;
  return kBase;
}

char digit_char(std::uint32_t d) noexcept {
  return d < 26 ? static_cast<char>('a' + d) : static_cast<char>('0' + d - 26);
}

}  // namespace

std::optional<std::vector<std::uint32_t>> punycode_decode(std::string_view input) {
  std::vector<std::uint32_t> output;
  // Basic code points precede the last delimiter '-'.
  const std::size_t delim = input.rfind('-');
  std::size_t in = 0;
  if (delim != std::string_view::npos) {
    for (std::size_t i = 0; i < delim; ++i) {
      const auto c = static_cast<unsigned char>(input[i]);
      if (c >= 0x80) return std::nullopt;  // basic section must be ASCII
      output.push_back(c);
    }
    in = delim + 1;
  }

  std::uint32_t n = kInitialN;
  std::uint32_t i = 0;
  std::uint32_t bias = kInitialBias;
  while (in < input.size()) {
    const std::uint32_t old_i = i;
    std::uint32_t w = 1;
    for (std::uint32_t k = kBase;; k += kBase) {
      if (in >= input.size()) return std::nullopt;  // truncated
      const std::uint32_t digit = digit_value(input[in++]);
      if (digit >= kBase) return std::nullopt;
      if (digit > (std::numeric_limits<std::uint32_t>::max() - i) / w) return std::nullopt;
      i += digit * w;
      const std::uint32_t t = k <= bias ? kTMin : (k >= bias + kTMax ? kTMax : k - bias);
      if (digit < t) break;
      if (w > std::numeric_limits<std::uint32_t>::max() / (kBase - t)) return std::nullopt;
      w *= kBase - t;
    }
    const auto out_size = static_cast<std::uint32_t>(output.size() + 1);
    bias = adapt(i - old_i, out_size, old_i == 0);
    if (i / out_size > std::numeric_limits<std::uint32_t>::max() - n) return std::nullopt;
    n += i / out_size;
    i %= out_size;
    if (n > kMaxCodePoint) return std::nullopt;
    output.insert(output.begin() + i, n);
    ++i;
  }
  return output;
}

std::optional<std::string> punycode_encode(const std::vector<std::uint32_t>& input) {
  std::string output;
  std::size_t basic = 0;
  for (const std::uint32_t cp : input) {
    if (cp > kMaxCodePoint) return std::nullopt;
    if (cp < 0x80) {
      output += static_cast<char>(cp);
      ++basic;
    }
  }
  const std::size_t handled_init = basic;
  if (basic > 0) output += '-';

  std::uint32_t n = kInitialN;
  std::uint32_t delta = 0;
  std::uint32_t bias = kInitialBias;
  std::size_t handled = handled_init;
  while (handled < input.size()) {
    // Smallest unhandled code point >= n.
    std::uint32_t m = kMaxCodePoint + 1;
    for (const std::uint32_t cp : input) {
      if (cp >= n && cp < m) m = cp;
    }
    if (m - n > (std::numeric_limits<std::uint32_t>::max() - delta) /
                    static_cast<std::uint32_t>(handled + 1)) {
      return std::nullopt;
    }
    delta += (m - n) * static_cast<std::uint32_t>(handled + 1);
    n = m;
    for (const std::uint32_t cp : input) {
      if (cp < n && ++delta == 0) return std::nullopt;
      if (cp == n) {
        std::uint32_t q = delta;
        for (std::uint32_t k = kBase;; k += kBase) {
          const std::uint32_t t = k <= bias ? kTMin : (k >= bias + kTMax ? kTMax : k - bias);
          if (q < t) break;
          output += digit_char(t + (q - t) % (kBase - t));
          q = (q - t) / (kBase - t);
        }
        output += digit_char(q);
        bias = adapt(delta, static_cast<std::uint32_t>(handled + 1), handled == handled_init);
        delta = 0;
        ++handled;
      }
    }
    ++delta;
    ++n;
  }
  return output;
}

std::string utf8_encode(const std::vector<std::uint32_t>& code_points) {
  std::string out;
  for (const std::uint32_t cp : code_points) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }
  return out;
}

std::string idn_label_to_unicode(std::string_view label) {
  if (label.size() < 5 || label.substr(0, 4) != "xn--") return std::string{label};
  const auto decoded = punycode_decode(label.substr(4));
  if (!decoded) return std::string{label};
  return utf8_encode(*decoded);
}

}  // namespace dnsembed::dns
