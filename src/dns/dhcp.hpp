// DHCP lease table: maps (client IP, time) back to the stable device id
// (MAC). The paper joins DHCP logs with DNS logs so a device that changes
// IP (mobility, lease expiry) is still tracked as one host in the
// host-domain bipartite graph.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/ipv4.hpp"

namespace dnsembed::dns {

struct DhcpLease {
  std::string mac;        // stable device id
  Ipv4 ip;                // assigned address
  std::int64_t start = 0; // lease start (inclusive), seconds
  std::int64_t end = 0;   // lease end (exclusive), seconds

  friend bool operator==(const DhcpLease&, const DhcpLease&) = default;
};

class DhcpTable {
 public:
  /// Record one lease. Leases for the same IP may not overlap in time;
  /// an overlapping add throws std::invalid_argument.
  void add_lease(DhcpLease lease);

  /// The device holding `ip` at time `t`, if any.
  std::optional<std::string> device_for(Ipv4 ip, std::int64_t t) const;

  std::size_t lease_count() const noexcept { return count_; }

  /// All leases for an IP, sorted by start time (empty if unknown IP).
  std::vector<DhcpLease> leases_for(Ipv4 ip) const;

  /// Reverse lookup: the IP a device held at time `t`, if any (used when
  /// packetizing device-attributed logs back into IP-addressed traffic).
  std::optional<Ipv4> ip_for(const std::string& mac, std::int64_t t) const;

 private:
  // Per-IP leases kept sorted by start for binary search.
  std::unordered_map<Ipv4, std::vector<DhcpLease>> by_ip_;
  // Per-device leases, sorted lazily on first reverse lookup (hence
  // mutable: sorting is a cache refresh, not observable state).
  mutable std::unordered_map<std::string, std::vector<DhcpLease>> by_mac_;
  mutable bool mac_sorted_ = true;
  std::size_t count_ = 0;
};

}  // namespace dnsembed::dns
